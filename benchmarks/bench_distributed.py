#!/usr/bin/env python
"""Benchmark the distributed sweep fabric against the in-process paths.

Runs one characterisation sweep under every shard executor — ``serial``
(the reference), ``pool`` (forked processes) and ``file-queue``
(coordinator + spawned ``repro worker`` processes over a spool
directory) — and records wall-clock plus the executor overhead relative
to the pool.  A chaos section kills a file-queue worker mid-shard
(``worker-exit`` fault) and demands the stale-lease requeue recover the
sweep.

Every timing rides on a verified contract: the statistic grids of every
executor (chaos run included) must be **bit-identical** to the serial
reference — a payload with any ``bit_identical_vs_serial: false`` fails
validation, so the committed JSON doubles as a byte-identity certificate
for the topology matrix it reports.

Writes ``BENCH_distributed.json``.  ``--smoke`` shrinks the sweep and
worker counts for the ``scripts/check.sh`` gate.

Usage::

    python benchmarks/bench_distributed.py
    python benchmarks/bench_distributed.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.characterization import CharacterizationConfig, characterize_multiplier
from repro.fabric import make_device
from repro.faults import FaultPlan, FaultSpec
from repro.parallel.executors import FileQueueExecutor

SCHEMA_VERSION = 1

_TOP_KEYS = {
    "schema_version",
    "benchmark",
    "smoke",
    "cpus",
    "sweep",
    "executors",
    "chaos",
}
_EXECUTOR_KEYS = {"seconds", "bit_identical_vs_serial", "overhead_vs_pool"}


def _grid_bytes(result) -> bytes:
    return (
        result.variance.tobytes()
        + result.mean.tobytes()
        + result.error_rate.tobytes()
    )


def _run(device, cfg, seed, **kwargs):
    t0 = time.perf_counter()
    result = characterize_multiplier(device, 8, 8, cfg, seed=seed, **kwargs)
    return time.perf_counter() - t0, result


def _validate(payload: dict) -> None:
    missing = _TOP_KEYS - payload.keys()
    if missing:
        raise AssertionError(f"payload missing keys: {sorted(missing)}")
    for name, entry in payload["executors"].items():
        lacking = _EXECUTOR_KEYS - entry.keys()
        if lacking:
            raise AssertionError(
                f"executor entry {name} missing keys: {sorted(lacking)}"
            )
        if not entry["bit_identical_vs_serial"]:
            raise AssertionError(
                f"executor {name} diverged from the serial reference"
            )
    chaos = payload["chaos"]
    if not chaos["bit_identical_vs_serial"]:
        raise AssertionError("chaos run diverged from the serial reference")
    if chaos["leases_requeued"] < 1:
        raise AssertionError(
            "worker-exit chaos fired but no stale lease was requeued"
        )
    if chaos["status"] != "complete":
        raise AssertionError(f"chaos sweep did not complete: {chaos['status']}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="smaller sizes for CI")
    parser.add_argument(
        "--output",
        default="BENCH_distributed.json",
        help="where to write the results JSON",
    )
    args = parser.parse_args(argv)

    n_samples = 40 if args.smoke else 160
    n_mult = 8 if args.smoke else 16
    workers = 2 if args.smoke else 4
    seed = 7
    device = make_device(1234)
    cfg = CharacterizationConfig(
        freqs_mhz=(300.0, 360.0, 420.0),
        n_samples=n_samples,
        multiplicands=tuple(range(n_mult)),
        n_locations=2,
    )

    print(f"distributed fabric bench ({'smoke' if args.smoke else 'reference'})")
    serial_s, reference = _run(device, cfg, seed, executor="serial")
    reference_bytes = _grid_bytes(reference)
    print(f"  serial: {serial_s:.2f}s (reference)")

    pool_s, pooled = _run(device, cfg, seed, jobs=workers, executor="pool")
    print(f"  pool({workers} jobs): {pool_s:.2f}s")

    fq = FileQueueExecutor(workers=workers)
    fq_s, queued = _run(device, cfg, seed, executor=fq)
    print(
        f"  file-queue({workers} workers): {fq_s:.2f}s "
        f"({fq_s / pool_s:.2f}x pool)"
    )

    executors = {
        "serial": {
            "seconds": round(serial_s, 3),
            "bit_identical_vs_serial": True,
            "overhead_vs_pool": round(serial_s / pool_s, 2),
        },
        "pool": {
            "seconds": round(pool_s, 3),
            "bit_identical_vs_serial": _grid_bytes(pooled) == reference_bytes,
            "overhead_vs_pool": 1.0,
            "jobs": workers,
        },
        "file-queue": {
            "seconds": round(fq_s, 3),
            "bit_identical_vs_serial": _grid_bytes(queued) == reference_bytes,
            "overhead_vs_pool": round(fq_s / pool_s, 2),
            "workers": workers,
            "shards_folded": fq.last_stats.get("folded", 0),
        },
    }

    # Chaos: kill one worker mid-shard; the coordinator's stale-lease
    # requeue must hand the shard to a surviving worker and still
    # reproduce the reference bytes.
    faults = FaultPlan(
        specs=(FaultSpec(kind="worker-exit", li=0, start=0, times=1),),
        seed=seed,
    )
    chaos_exec = FileQueueExecutor(workers=workers, lease_timeout_s=1.0)
    chaos_s, survived = _run(device, cfg, seed, executor=chaos_exec, faults=faults)
    chaos = {
        "fault": "worker-exit li=0 start=0 times=1",
        "workers": workers,
        "seconds": round(chaos_s, 3),
        "leases_requeued": chaos_exec.last_stats.get("requeued", 0),
        "bit_identical_vs_serial": _grid_bytes(survived) == reference_bytes,
        "status": survived.outcome.status if survived.outcome else "",
    }
    print(
        f"  chaos (worker kill): {chaos_s:.2f}s, "
        f"{chaos['leases_requeued']} lease(s) requeued"
    )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "distributed_fabric",
        "smoke": args.smoke,
        "cpus": os.cpu_count() or 1,
        "sweep": {
            "n_samples": n_samples,
            "n_multiplicands": n_mult,
            "n_locations": 2,
            "n_freqs": 3,
            "seed": seed,
        },
        "executors": executors,
        "chaos": chaos,
    }
    _validate(payload)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
