#!/usr/bin/env python
"""Inside Algorithm 1: watching the design-space exploration work.

Runs the optimisation framework twice (weak and strong prior) and opens up
the exploration record: per-dimension candidate clouds, the surviving
Pareto points, the per-word-length sampling cost that the paper's run-time
model (eqs. 7-8) predicts, and how beta changes what the sampler is
willing to touch.

    python examples/design_space_exploration.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import OptimizationFramework, TableISettings, make_device
from repro.characterization import CharacterizationConfig
from repro.datasets import low_rank_gaussian
from repro.eval.report import render_table
from repro.framework import default_frequency_grid
from repro.models.runtime import RuntimeModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--serial", type=int, default=42)
    args = parser.parse_args()

    settings = TableISettings().scaled(args.scale)
    device = make_device(args.serial)
    char = CharacterizationConfig(
        freqs_mhz=default_frequency_grid(settings.clock_frequency_mhz),
        n_samples=settings.n_characterization,
        n_locations=2,
    )
    fw = OptimizationFramework(device, settings, char_config=char, seed=args.serial)
    x = low_rank_gaussian(settings.p, settings.k, settings.n_train,
                          np.random.default_rng(0), noise=0.02)

    print(f"exploring {len(settings.coeff_wordlengths)} word-lengths x "
          f"{settings.k} dimensions with Q={settings.q} survivors "
          f"(beta in {{0.5, 4.0}}) ...")
    weak = fw.optimize(x, beta=0.5)
    strong = fw.optimize(x, beta=4.0)

    # --- candidate clouds per dimension --------------------------------
    for d, hist in enumerate(strong.candidate_history, start=1):
        areas = [a for a, _ in hist]
        objs = [t for _, t in hist]
        print(f"\ndimension {d}: {len(hist)} candidates, area "
              f"{min(areas):.0f}-{max(areas):.0f} LE, objective "
              f"{min(objs):.2e}-{max(objs):.2e}")

    # --- final Pareto designs per beta ----------------------------------
    rows = []
    for name, res in (("beta=0.5", weak), ("beta=4.0", strong)):
        for dsg in sorted(res.designs, key=lambda d: d.area_le):
            rows.append(
                (
                    name,
                    str(dsg.wordlengths),
                    f"{dsg.area_le:.0f}",
                    dsg.metadata["train_mse"],
                    dsg.metadata["overclocking_term"],
                )
            )
    print()
    print(render_table(
        ["run", "wordlengths", "area LE", "train MSE", "predicted OC term"],
        rows,
        title="Final Pareto designs",
    ))

    # --- run-time record vs the paper's model ---------------------------
    by_wl: dict[int, list[float]] = {}
    for _, wl, sec in strong.sampling_times:
        by_wl.setdefault(wl, []).append(sec)
    measured = {wl: float(np.mean(v)) for wl, v in sorted(by_wl.items())}
    fitted = RuntimeModel.fit(list(measured), list(measured.values()))
    print()
    print(render_table(
        ["wordlength", "mean sampling seconds"],
        sorted(measured.items()),
        title="Per-word-length sampling cost (paper eq. 8 territory)",
    ))
    print(f"fitted R(wl) = {fitted.scale:.4g} * exp({fitted.rate:.3f} * wl); "
          f"paper's silicon-era constants: 0.4266 * exp(0.6427 * wl)")
    print(f"total sampling time: beta=0.5 {weak.total_sampling_seconds:.1f}s, "
          f"beta=4.0 {strong.total_sampling_seconds:.1f}s over "
          f"{len(strong.sampling_times)} vector samplings "
          f"(eq. 7 structure: {len(settings.coeff_wordlengths)} wl x "
          f"(1 + {settings.q}({settings.k}-1)))")


if __name__ == "__main__":
    main()
