#!/usr/bin/env python
"""Quickstart: the full per-device optimisation flow in one script.

Walks the paper's Fig. 2 design flow end to end on a simulated device:

1. fabricate a device (the serial number *is* the die identity);
2. lint the design-under-test netlist (the flow's design-rule check);
3. characterise its generic multipliers under over-clocking;
4. fit the area model from synthesis runs;
5. run Algorithm 1 at the 310 MHz target;
6. compare the resulting designs against the classical KLT methodology,
   measured on the device (the "actual" domain).

Run time: ~1 minute with the default --scale 0.05.  Pass --jobs N (or
set REPRO_JOBS) to fan the characterisation out over N worker
processes — the numbers do not change, only the wall-clock.  Pass
--trace PATH to record the run with repro.obs: PATH.jsonl (sidecar),
PATH.json (open in chrome://tracing or Perfetto) and a metrics snapshot
next to them — the numbers still do not change.

    python examples/quickstart.py [--scale 0.05] [--serial 42] [--jobs 4]
    python examples/quickstart.py --trace /tmp/quickstart-trace
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import Domain, OptimizationFramework, TableISettings, make_device, obs
from repro.analysis import lint_netlist
from repro.characterization import CharacterizationConfig
from repro.cli_flow import export_telemetry, resolve_telemetry_paths
from repro.datasets import low_rank_gaussian
from repro.eval.report import render_table
from repro.framework import default_frequency_grid
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.parallel import resolve_jobs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's Table-I sample counts")
    parser.add_argument("--serial", type=int, default=42,
                        help="device serial number (selects the die)")
    parser.add_argument("--beta", type=float, default=4.0)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a repro.obs trace of the run "
                             "(default: $REPRO_TRACE)")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write a repro.obs metrics snapshot "
                             "(default: $REPRO_METRICS)")
    args = parser.parse_args()
    jobs = resolve_jobs(args.jobs)  # rejects jobs < 1 up front
    trace_path, metrics_path = resolve_telemetry_paths(args.trace, args.metrics)
    if trace_path or metrics_path:
        obs.enable_observability(trace=bool(trace_path),
                                 metrics=bool(metrics_path))

    # 1. Fabricate the device.
    device = make_device(args.serial)
    report = device.report()
    print(f"device: {report['family']} serial={report['serial']} "
          f"({report['le_count']} LEs, variation std "
          f"{report['variation_std']:.3f})")

    # 2. Static-analysis gate on the design-under-test (also enforced
    #    inside SynthesisFlow.run; shown here for the lint report).
    settings_preview = TableISettings()
    dut = unsigned_array_multiplier(settings_preview.input_wordlength,
                                    max(settings_preview.coeff_wordlengths))
    print(lint_netlist(dut).summary())

    # 3. Build the framework (characterisation + area model are lazy).
    settings = TableISettings().scaled(args.scale)
    char = CharacterizationConfig(
        freqs_mhz=default_frequency_grid(settings.clock_frequency_mhz),
        n_samples=settings.n_characterization,
        n_locations=2,
    )
    fw = OptimizationFramework(device, settings, char_config=char,
                               seed=args.serial, jobs=jobs)
    print(f"characterising multipliers for word-lengths "
          f"{settings.coeff_wordlengths} (jobs={jobs}) ...")
    fw.characterize()
    fw.fit_area_model()

    # Data: train/test split from one generative model (Z^6 -> Z^3).
    rng = np.random.default_rng(0)
    x = low_rank_gaussian(settings.p, settings.k,
                          settings.n_train + settings.n_test, rng, noise=0.02)
    x_train, x_test = x[:, : settings.n_train], x[:, settings.n_train:]

    # 5. Algorithm 1.
    print(f"running Algorithm 1 (beta={args.beta}, "
          f"{settings.clock_frequency_mhz:.0f} MHz target) ...")
    result = fw.optimize(x_train, beta=args.beta)

    # 6. Head-to-head on the device.
    rows = []
    for d in sorted(result.designs, key=lambda d: d.area_le):
        ev = fw.evaluate(d, x_test, Domain.ACTUAL)
        rows.append(("OF", str(d.wordlengths), f"{ev.area_le:.0f}", ev.mse))
    for d in fw.klt_baselines(x_train):
        ev = fw.evaluate(d, x_test, Domain.ACTUAL)
        rows.append(("KLT", str(d.wordlengths[0]), f"{ev.area_le:.0f}", ev.mse))
    print()
    print(render_table(
        ["family", "wordlength(s)", "area LE", "actual MSE @ 310 MHz"],
        rows,
        title="Over-clocked reconstruction error on this device",
    ))
    print("\nNote how the KLT curve degrades at large word-lengths (over-"
          "clocking errors) while the OF designs stay on model.")

    if trace_path or metrics_path:
        export_telemetry(trace_path, metrics_path)


if __name__ == "__main__":
    main()
