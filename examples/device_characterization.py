#!/usr/bin/env python
"""Walkthrough of the multiplier characterisation framework (paper Sec. III).

Demonstrates, on two different simulated dies:

* the characterisation circuit architecture (BRAM streams, safe FSM clock
  domain, PLL-synthesised DUT clock);
* the frequency/location/multiplicand sweep and the E(m, f) structure
  (errors cumulative in frequency; sparse multiplicands benign; placement
  changes the pattern);
* persistence of the results to an .npz archive;
* device-to-device differences — the reason characterisation is
  *per device*;
* re-characterisation after aging (paper Sec. II: reconfigurability lets
  you re-characterise and re-optimise as the device degrades).

    python examples/device_characterization.py [--samples 400]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import OperatingConditions, make_device
from repro.characterization import (
    CharacterizationConfig,
    CharacterizationResult,
    characterize_multiplier,
    error_trace,
)
from repro.eval.report import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=400)
    args = parser.parse_args()

    freqs = (270.0, 300.0, 330.0, 360.0)
    cfg = CharacterizationConfig(
        freqs_mhz=freqs,
        n_samples=args.samples,
        multiplicands=tuple(range(0, 256, 4)),
        n_locations=2,
    )

    # --- two dies of the same family ---------------------------------
    dev_a = make_device(serial=1001)
    dev_b = make_device(serial=2002)
    print("characterising an 8x8 generic multiplier on two dies ...")
    res_a = characterize_multiplier(dev_a, 8, 8, cfg, seed=0)
    res_b = characterize_multiplier(dev_b, 8, 8, cfg, seed=0)

    rows = []
    for fi, f in enumerate(res_a.freqs_mhz):
        rows.append(
            (
                f"{f:.0f}",
                float(res_a.variance[:, :, fi].mean()),
                float(res_b.variance[:, :, fi].mean()),
            )
        )
    print()
    print(
        render_table(
            ["freq MHz", "mean E(m,f) die A", "mean E(m,f) die B"],
            rows,
            title="Errors are cumulative in frequency - and device specific",
        )
    )

    # --- the popcount effect (Fig. 5) ---------------------------------
    top = res_a.variance_grid(None)[:, -1]
    pop = np.array([bin(m).count("1") for m in res_a.multiplicands])
    rows = [
        (c, float(top[pop == c].mean()))
        for c in sorted(set(pop.tolist()))
        if (pop == c).any()
    ]
    print()
    print(
        render_table(
            ["popcount(m)", "mean variance @ top freq"],
            rows,
            title="Sparse multiplicands err less (paper Fig. 5)",
        )
    )

    # --- location dependence (Fig. 4) ----------------------------------
    t1 = error_trace(dev_a, 222, 330.0, args.samples, location=res_a.locations[0], seed=1)
    t2 = error_trace(dev_a, 222, 330.0, args.samples, location=res_a.locations[1], seed=2)
    print()
    print(
        f"multiplicand 222 @ 330 MHz: error rate {t1.error_rate:.4f} at "
        f"{res_a.locations[0]} vs {t2.error_rate:.4f} at {res_a.locations[1]}"
    )

    # --- persistence ----------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "die_a_8x8.npz"
        res_a.save(path)
        reloaded = CharacterizationResult.load(path)
        assert np.array_equal(reloaded.variance, res_a.variance)
        print(f"\nresults archived and reloaded from {path.name} "
              f"({path.stat().st_size} bytes)")

    # --- aging + re-characterisation -----------------------------------
    aged = dev_a.with_conditions(OperatingConditions(temperature_c=14.0, aging_years=8.0))
    res_aged = characterize_multiplier(aged, 8, 8, cfg, seed=0)
    fresh_mean = float(res_a.variance[:, :, 2].mean())
    aged_mean = float(res_aged.variance[:, :, 2].mean())
    print(
        f"\nafter 8 years of aging, mean E(m, {freqs[2]:.0f} MHz) grows "
        f"{fresh_mean:.3g} -> {aged_mean:.3g}; re-characterisation captures "
        "the drift so designs can be re-optimised (paper Sec. II)."
    )


if __name__ == "__main__":
    main()
