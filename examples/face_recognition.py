#!/usr/bin/env python
"""Eigenfaces-style dimensionality reduction on an over-clocked device.

Two take-aways, both straight from the paper's motivation: linear
projections tolerate datapath errors gracefully (recognition accuracy
survives deep over-clocking — Sec. I: projections "aren't critical to
errors in many parts of their designs"), and the optimisation framework
finds designs with lower reconstruction error at less area than the
classical KLT flow once the clock is pushed into the error regime.

The paper motivates its framework with "applications with high dimensions
(i.e. face recognition)" (Sec. V).  This example projects 6x6 face-like
image patches (36 dimensions) down to a handful of eigen-coefficients on
the over-clocked datapath and runs a nearest-neighbour identity check on
the projected features — the classic eigenfaces pipeline.

It compares recognition accuracy at the 310 MHz target when the projection
matrix comes from (a) the classical KLT methodology and (b) the
over-clocking-aware optimisation framework.

    python examples/face_recognition.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import Domain, OptimizationFramework, TableISettings, make_device
from repro.characterization import CharacterizationConfig
from repro.core.design import LinearProjectionDesign
from repro.datasets import face_like_patches
from repro.eval.report import render_table
from repro.framework import default_frequency_grid


def make_identities(n_ids: int, samples_per_id: int, rng: np.random.Generator):
    """Face-like patches clustered around per-identity prototypes.

    All prototypes are drawn in one call (the generator centres across
    samples, so they share a population mean) and each observation adds a
    small within-identity perturbation.
    """
    height = width = 6
    protos = face_like_patches(
        height, width, n_ids, np.random.default_rng(1000), noise=0.0
    )  # (36, n_ids)
    gallery = []
    labels = []
    for ident in range(n_ids):
        for _ in range(samples_per_id):
            gallery.append(protos[:, ident] + 0.08 * rng.normal(size=protos.shape[0]))
            labels.append(ident)
    x = np.stack(gallery, axis=1)
    x /= np.abs(x).max()
    return x, np.asarray(labels)


def projected_features(
    fw: OptimizationFramework, design: LinearProjectionDesign, x: np.ndarray, seed: int
) -> np.ndarray:
    """Run the design's datapath on the device and return the factors F.

    This is what the deployed system would hand to the classifier: the
    over-clocked multiplier lanes' outputs, accumulated per column —
    including any timing errors the clock provokes.
    """
    from repro.circuits.datapath import ProjectionDatapath
    from repro.core.quantize import quantize_data

    datapath = ProjectionDatapath(design, fw.device, anchor=(0, 0), seed=seed)
    q = quantize_data(x, design.w_data)
    peak = float(np.abs(x).max())
    n = x.shape[1]
    factors = np.empty((design.k, n))
    for k, wl in enumerate(design.wordlengths):
        run = datapath.run_lane(
            k, q.magnitudes, design.freq_mhz, np.random.default_rng(seed + k)
        )
        sign = (q.signs * design.signs[:, k][:, None]).T.reshape(-1)
        val = sign * run.captured_products * peak * 2.0 ** (-(design.w_data + wl))
        factors[k] = val.reshape(n, design.p).sum(axis=1)
    return factors


def nn_accuracy(train_f, train_y, test_f, test_y) -> float:
    """1-nearest-neighbour accuracy in feature space."""
    d2 = ((test_f.T[:, None, :] - train_f.T[None, :, :]) ** 2).sum(axis=2)
    pred = train_y[np.argmin(d2, axis=1)]
    return float((pred == test_y).mean())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--serial", type=int, default=7)
    parser.add_argument("--n-ids", type=int, default=16)
    parser.add_argument("--freq", type=float, default=375.0,
                        help="target clock in MHz (340 = deep over-clock)")
    args = parser.parse_args()

    p = 36  # 6x6 patches
    k = 4
    settings = TableISettings(
        p=p,
        k=k,
        clock_frequency_mhz=args.freq,
        n_characterization=TableISettings().scaled(args.scale).n_characterization,
        n_train=60,
        n_test=200,
        burn_in=TableISettings().scaled(args.scale).burn_in,
        n_samples=TableISettings().scaled(args.scale).n_samples,
        q=3,
        min_coeff_wordlength=4,
        max_coeff_wordlength=8,
    )
    device = make_device(args.serial)
    char = CharacterizationConfig(
        freqs_mhz=default_frequency_grid(settings.clock_frequency_mhz),
        n_samples=settings.n_characterization,
        n_locations=1,
    )
    fw = OptimizationFramework(device, settings, char_config=char, seed=args.serial)

    rng = np.random.default_rng(0)
    x_train, y_train = make_identities(args.n_ids, 6, rng)
    x_test, y_test = make_identities(args.n_ids, 4, np.random.default_rng(99))

    print(f"gallery: {x_train.shape[1]} faces of {args.n_ids} identities, "
          f"{p}-dim patches -> {k} eigen-coefficients @ "
          f"{settings.clock_frequency_mhz:.0f} MHz")
    print("characterising + optimising ...")
    of_design = fw.optimize(x_train, beta=4.0).best_design()
    klt_designs = fw.klt_baselines(x_train)

    rows = []
    for name, design in [("OF", of_design)] + [
        (f"KLT-{d.wordlengths[0]}", d) for d in klt_designs[-2:]
    ]:
        ev = fw.evaluate(design, x_test, Domain.ACTUAL)
        f_train = projected_features(fw, design, x_train, seed=1)
        f_test = projected_features(fw, design, x_test, seed=1)
        acc = nn_accuracy(f_train, y_train, f_test, y_test)
        rows.append((name, str(design.wordlengths), f"{ev.area_le:.0f}", ev.mse, f"{acc:.2%}"))

    print()
    print(render_table(
        ["design", "wordlengths", "area LE", "actual MSE", "NN accuracy"],
        rows,
        title="Eigenfaces on the over-clocked datapath",
    ))


if __name__ == "__main__":
    main()
