#!/usr/bin/env python
"""Patch-based image compression on the over-clocked projection datapath.

A classic linear-projection workload (paper Sec. IV: "a large number of
applications can be found in computer vision, image processing"): a
synthetic image is cut into 4x4 patches, every patch is projected to K
coefficients on the device at the target clock, and the image is
reconstructed from the coefficients.  Compression quality is reported as
PSNR for the classical KLT designs and the optimisation framework's
designs.

    python examples/image_compression.py [--scale 0.05] [--freq 340]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import Domain, OptimizationFramework, TableISettings, make_device
from repro.characterization import CharacterizationConfig
from repro.eval.report import render_table
from repro.framework import default_frequency_grid


def synthetic_image(size: int, rng: np.random.Generator) -> np.ndarray:
    """A smooth synthetic image in [-1, 1] (sum of 2-D cosine gratings)."""
    y, x = np.mgrid[0:size, 0:size].astype(float) / size
    img = np.zeros((size, size))
    for _ in range(6):
        fy, fx = rng.integers(1, 5, 2)
        phase = rng.uniform(0, 2 * np.pi)
        img += rng.normal() * np.cos(2 * np.pi * (fy * y + fx * x) + phase)
    img += 0.05 * rng.normal(size=img.shape)
    return img / np.abs(img).max()


def to_patches(img: np.ndarray, ps: int) -> np.ndarray:
    """Cut an image into non-overlapping ps x ps patches, one per column."""
    h, w = img.shape
    patches = (
        img[: h - h % ps, : w - w % ps]
        .reshape(h // ps, ps, w // ps, ps)
        .transpose(0, 2, 1, 3)
        .reshape(-1, ps * ps)
        .T
    )
    return patches


def psnr(reference: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio over the [-1, 1] dynamic range."""
    mse = float(((reference - reconstructed) ** 2).mean())
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(4.0 / mse)  # peak-to-peak = 2 -> peak^2 = 4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--serial", type=int, default=11)
    parser.add_argument("--freq", type=float, default=340.0)
    parser.add_argument("--size", type=int, default=64, help="image side length")
    args = parser.parse_args()

    ps = 4  # patch side -> P = 16
    k = 3
    base = TableISettings().scaled(args.scale)
    settings = TableISettings(
        p=ps * ps,
        k=k,
        clock_frequency_mhz=args.freq,
        n_characterization=base.n_characterization,
        n_train=base.n_train,
        n_test=base.n_test,
        burn_in=base.burn_in,
        n_samples=base.n_samples,
        q=3,
        min_coeff_wordlength=4,
        max_coeff_wordlength=9,
    )
    device = make_device(args.serial)
    char = CharacterizationConfig(
        freqs_mhz=default_frequency_grid(args.freq),
        n_samples=settings.n_characterization,
        n_locations=1,
    )
    fw = OptimizationFramework(device, settings, char_config=char, seed=args.serial)

    rng = np.random.default_rng(3)
    train_img = synthetic_image(args.size, rng)
    test_img = synthetic_image(args.size, np.random.default_rng(17))
    x_train = to_patches(train_img, ps)
    x_test = to_patches(test_img, ps)
    ratio = (ps * ps) / k
    print(
        f"compressing {args.size}x{args.size} image: {x_test.shape[1]} patches, "
        f"{ps * ps} -> {k} coefficients ({ratio:.1f}x), datapath @ {args.freq:.0f} MHz"
    )

    print("characterising + optimising ...")
    of_best = fw.optimize(x_train, beta=4.0).best_design()
    klt = fw.klt_baselines(x_train)

    rows = []
    for name, design in [("OF", of_best)] + [
        (f"KLT-{d.wordlengths[0]}", d) for d in klt
    ]:
        ev = fw.evaluate(design, x_test, Domain.ACTUAL)
        rows.append(
            (
                name,
                f"{ev.area_le:.0f}",
                ev.mse,
                f"{psnr(x_test, x_test) if ev.mse == 0 else 10.0 * np.log10(4.0 / ev.mse):.1f} dB",
                f"{max(ev.extra['lane_error_rates']):.3f}",
            )
        )
    print()
    print(
        render_table(
            ["design", "area LE", "patch MSE", "PSNR", "worst lane error rate"],
            rows,
            title=f"Image compression quality @ {args.freq:.0f} MHz",
        )
    )


if __name__ == "__main__":
    main()
