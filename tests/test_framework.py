"""Tests for repro.framework — the end-to-end Fig. 2 flow.

A single session-scoped framework instance at small scale keeps the
wall-clock cost manageable; the underlying pieces are unit-tested in their
own modules.
"""

import numpy as np
import pytest

from repro import Domain, OptimizationFramework, TableISettings
from repro.characterization import CharacterizationConfig
from repro.datasets import low_rank_gaussian
from repro.framework import default_frequency_grid

SETTINGS = TableISettings(
    n_characterization=120,
    n_train=60,
    n_test=120,
    burn_in=30,
    n_samples=120,
    q=3,
    min_coeff_wordlength=3,
    max_coeff_wordlength=6,
)

CHAR = CharacterizationConfig(
    freqs_mhz=(250.0, 310.0, 360.0, 420.0),
    n_samples=120,
    n_locations=1,
)


@pytest.fixture(scope="module")
def fw(device):
    return OptimizationFramework(device, SETTINGS, char_config=CHAR, seed=5)


@pytest.fixture(scope="module")
def data():
    x = low_rank_gaussian(6, 3, 180, np.random.default_rng(2), noise=0.02)
    return x[:, :60], x[:, 60:]


class TestDefaultFrequencyGrid:
    def test_brackets_target(self):
        grid = default_frequency_grid(310.0)
        assert min(grid) < 310.0 < max(grid)
        assert any(abs(g - 310.0) < 1e-9 for g in grid)

    def test_sorted(self):
        grid = default_frequency_grid(200.0)
        assert list(grid) == sorted(grid)


class TestCharacterize:
    def test_models_for_every_wordlength(self, fw):
        ems = fw.characterize()
        assert ems.wordlengths == SETTINGS.coeff_wordlengths

    def test_cached(self, fw):
        assert fw.characterize() is fw.characterize()


class TestAreaModel:
    def test_fitted_and_cached(self, fw):
        am = fw.fit_area_model()
        assert am is fw.fit_area_model()
        assert float(am.predict(6)) > float(am.predict(3))


class TestOptimize(object):
    def test_produces_q_designs(self, fw, data):
        res = fw.optimize(data[0], beta=4.0)
        assert len(res.designs) == SETTINGS.q
        for d in res.designs:
            assert d.method == "of"
            assert d.freq_mhz == SETTINGS.clock_frequency_mhz

    def test_klt_baselines_one_per_wordlength(self, fw, data):
        baselines = fw.klt_baselines(data[0])
        assert [d.wordlengths[0] for d in baselines] == list(
            SETTINGS.coeff_wordlengths
        )
        areas = [d.area_le for d in baselines]
        assert areas == sorted(areas)


class TestEvaluate:
    def test_all_domains(self, fw, data):
        design = fw.klt_baselines(data[0])[1]
        evs = fw.evaluate_all_domains(design, data[1])
        assert set(evs) == {Domain.PREDICTED, Domain.SIMULATED, Domain.ACTUAL}
        for ev in evs.values():
            assert ev.mse >= 0

    def test_design_points(self, fw, data):
        designs = fw.klt_baselines(data[0])[:2]
        pts = fw.design_points(designs, data[1], Domain.PREDICTED)
        assert len(pts) == 2
        assert all(p.domain == "predicted" for p in pts)
