"""Lint-style audit: no dataclass shares a mutable default between instances.

A shared mutable default is the classic Python aliasing bug: one instance
mutates state that silently belongs to every instance.  ``dataclasses``
rejects plain ``list``/``dict``/``set`` defaults at class-creation time,
but NOT mutable values smuggled in via ``field(default=...)`` or mutable
types it does not recognise (``np.ndarray``, user classes).  This test
walks every module under :mod:`repro` and enforces isolation mechanically
so a regression cannot land unnoticed.
"""

import dataclasses
import importlib
import pkgutil

import numpy as np
import pytest

import repro

#: Types whose sharing across instances is an aliasing hazard.
_MUTABLE_TYPES = (list, dict, set, bytearray, np.ndarray)


def _walk_dataclasses():
    """Every dataclass defined in the repro package, with its module."""
    seen = set()
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        for obj in vars(module).values():
            if (
                isinstance(obj, type)
                and dataclasses.is_dataclass(obj)
                and obj.__module__ == info.name
                and obj not in seen
            ):
                seen.add(obj)
                yield obj


ALL_DATACLASSES = sorted(_walk_dataclasses(), key=lambda c: f"{c.__module__}.{c.__qualname__}")


def test_the_walk_finds_the_known_config_classes():
    names = {c.__qualname__ for c in ALL_DATACLASSES}
    # Canary: if the walk silently broke, these would vanish and every
    # other test here would pass vacuously.
    assert {"TableISettings", "ResilienceSettings", "FaultSpec", "Shard"} <= names


@pytest.mark.parametrize(
    "cls", ALL_DATACLASSES, ids=lambda c: f"{c.__module__}.{c.__qualname__}"
)
def test_no_directly_mutable_field_default(cls):
    for f in dataclasses.fields(cls):
        if f.default is not dataclasses.MISSING:
            assert not isinstance(f.default, _MUTABLE_TYPES), (
                f"{cls.__qualname__}.{f.name} has a mutable default "
                f"({type(f.default).__name__}) shared by every instance; "
                f"use field(default_factory=...)"
            )


def _constructible(cls):
    try:
        return cls(), cls()
    except Exception:
        return None


@pytest.mark.parametrize(
    "cls", ALL_DATACLASSES, ids=lambda c: f"{c.__module__}.{c.__qualname__}"
)
def test_factory_fields_are_isolated_per_instance(cls):
    """Two no-arg instances must not alias any mutable field value."""
    pair = _constructible(cls)
    if pair is None:
        pytest.skip("not no-arg constructible")
    a, b = pair
    for f in dataclasses.fields(cls):
        va, vb = getattr(a, f.name, None), getattr(b, f.name, None)
        if isinstance(va, _MUTABLE_TYPES):
            assert va is not vb, (
                f"{cls.__qualname__}.{f.name}: both instances hold the "
                f"same {type(va).__name__} object — mutation on one leaks "
                f"into the other"
            )
