"""End-to-end integration tests: the paper's qualitative claims.

These tests run the whole pipeline at a reduced scale and assert the
*shape* of the paper's results — who wins, in which regime — rather than
absolute numbers.
"""

import numpy as np
import pytest

from repro import Domain, OptimizationFramework, TableISettings, make_device
from repro.characterization import CharacterizationConfig
from repro.datasets import low_rank_gaussian
from tests.conftest import SMALL_FAMILY

SETTINGS = TableISettings(
    n_characterization=250,
    n_train=80,
    n_test=300,
    burn_in=150,
    n_samples=450,
    q=5,
)

CHAR = CharacterizationConfig(
    freqs_mhz=(250.0, 280.0, 310.0, 340.0),
    n_samples=250,
    n_locations=1,
)


@pytest.fixture(scope="module")
def pipeline():
    device = make_device(42)  # full Cyclone III grid for realistic Fmax
    fw = OptimizationFramework(device, SETTINGS, char_config=CHAR, seed=7)
    x = low_rank_gaussian(
        6, 3, SETTINGS.n_train + SETTINGS.n_test, np.random.default_rng(0), noise=0.02
    )
    x_train, x_test = x[:, : SETTINGS.n_train], x[:, SETTINGS.n_train :]
    of = fw.optimize(x_train, beta=4.0)
    klt = fw.klt_baselines(x_train)
    return fw, of, klt, x_test


class TestPaperClaims:
    def test_target_clock_is_deep_overclocking(self, pipeline):
        """310 MHz is far above the tool Fmax of the 9-bit KLT design
        (paper headline: 1.85x)."""
        fw, of, klt, x_test = pipeline
        ev = fw.evaluate(klt[-1], x_test, Domain.ACTUAL)
        factor = 310.0 / ev.extra["tool_fmax_mhz"]
        assert factor > 1.5

    def test_klt_curve_u_shape(self, pipeline):
        """At 310 MHz small-wl KLT designs are quantisation-limited and
        large-wl ones error-limited: the end points are worse than the
        middle (paper Figs. 8 + 11)."""
        fw, of, klt, x_test = pipeline
        mses = [fw.evaluate(d, x_test, Domain.ACTUAL).mse for d in klt]
        mid = min(mses)
        assert mses[0] > mid  # wl=3 hurt by quantisation
        assert mses[-1] > mid  # wl=9 hurt by over-clocking

    def test_large_klt_designs_err_at_target(self, pipeline):
        fw, of, klt, x_test = pipeline
        ev9 = fw.evaluate(klt[-1], x_test, Domain.ACTUAL)
        assert any(r > 0 for r in ev9.extra["lane_error_rates"])

    def test_of_beats_klt_at_large_area(self, pipeline):
        """Paper Fig. 11: at comparable (large) area the OF designs win by
        a large factor because they dodge over-clocking errors."""
        fw, of, klt, x_test = pipeline
        of_points = [
            (d.area_le, fw.evaluate(d, x_test, Domain.ACTUAL).mse) for d in of.designs
        ]
        klt9 = fw.evaluate(klt[-1], x_test, Domain.ACTUAL)
        feasible = [m for a, m in of_points if a <= klt9.area_le * 1.05]
        assert feasible, "no OF design within the largest KLT area"
        assert min(feasible) < klt9.mse / 3

    def test_of_designs_behave_as_predicted(self, pipeline):
        """Paper Fig. 10: predicted ~ simulated ~ actual for OF designs."""
        fw, of, klt, x_test = pipeline
        for d in of.designs[:3]:
            evs = fw.evaluate_all_domains(d, x_test)
            pred = evs[Domain.PREDICTED].mse
            act = evs[Domain.ACTUAL].mse
            assert act < 10 * pred + 1e-4

    def test_of_pareto_spreads_area(self, pipeline):
        fw, of, klt, x_test = pipeline
        areas = sorted(d.area_le for d in of.designs)
        assert areas[-1] > areas[0]  # bins produce an area spread

    def test_determinism_end_to_end(self, pipeline):
        fw, of, klt, x_test = pipeline
        device = make_device(42)
        fw2 = OptimizationFramework(device, SETTINGS, char_config=CHAR, seed=7)
        x = low_rank_gaussian(
            6, 3, SETTINGS.n_train + SETTINGS.n_test, np.random.default_rng(0), noise=0.02
        )
        of2 = fw2.optimize(x[:, : SETTINGS.n_train], beta=4.0)
        for a, b in zip(of.designs, of2.designs):
            assert np.array_equal(a.values, b.values)


class TestDeviceSpecificity:
    def test_designs_are_device_specific(self):
        """Two dies produce different error models — the premise of
        per-device optimisation."""
        cfg = CharacterizationConfig(
            freqs_mhz=(420.0, 500.0), n_samples=150, n_locations=1
        )
        from repro.characterization import characterize_multiplier

        d1 = make_device(101, family=SMALL_FAMILY)
        d2 = make_device(202, family=SMALL_FAMILY)
        r1 = characterize_multiplier(d1, 9, 5, cfg, seed=0)
        r2 = characterize_multiplier(d2, 9, 5, cfg, seed=0)
        assert not np.allclose(r1.variance, r2.variance)
