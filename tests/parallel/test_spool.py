"""Tests for repro.parallel.spool — the file-queue's on-disk protocol.

The spool is a wire surface (frozen as ``spool.queue.v1``): descriptors,
results and outcomes must round-trip bit-exactly, installs must be
atomic, and the rename-based lease protocol must hand each shard to
exactly one claimant.
"""

import json

import numpy as np
import pytest

from repro.characterization import plan_characterization
from repro.errors import ConfigError
from repro.parallel import spool
from repro.parallel.engine import Shard, ShardResult
from repro.parallel.spool import WorkerOutcome


def _shards(device, n_mult=8, chunk=4, seed=5):
    planned = plan_characterization(device, 8, 8, None, seed=seed)
    return planned.plan, list(planned.shards)


class TestCanonicalJson:
    def test_sorted_compact_newline_terminated(self):
        text = spool.canonical_json({"b": 1, "a": [1.5, 2]})
        assert text == '{"a":[1.5,2],"b":1}\n'

    def test_float64_round_trips_exactly(self):
        values = [0.1, 1e-300, np.nextafter(1.0, 2.0), float(np.float64(1 / 3))]
        restored = json.loads(spool.canonical_json(values))
        assert all(a == b for a, b in zip(values, restored))


class TestDescriptorRoundTrips:
    def test_shard_round_trip_is_bit_exact(self, device):
        _, shards = _shards(device)
        for shard in shards:
            back = spool.shard_from_descriptor(
                json.loads(spool.canonical_json(spool.shard_descriptor(shard)))
            )
            assert back.li == shard.li
            assert back.location == shard.location
            assert back.start == shard.start
            assert back.multiplicands.tobytes() == shard.multiplicands.tobytes()
            assert back.stimulus.tobytes() == shard.stimulus.tobytes()

    def test_plan_round_trip(self, device):
        plan, _ = _shards(device)
        back = spool.plan_from_descriptor(
            json.loads(spool.canonical_json(spool.plan_descriptor(plan)))
        )
        assert back == plan

    def test_result_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(0)
        result = ShardResult(
            li=1,
            start=4,
            variance=rng.random((3, 5)),
            mean=rng.standard_normal((3, 5)) * 1e-7,
            error_rate=rng.random((3, 5)),
        )
        back = spool.result_from_record(
            json.loads(spool.canonical_json(spool.result_record(result)))
        )
        assert back.variance.tobytes() == result.variance.tobytes()
        assert back.mean.tobytes() == result.mean.tobytes()
        assert back.error_rate.tobytes() == result.error_rate.tobytes()

    def test_nan_cells_survive_the_wire(self):
        grid = np.array([[np.nan, 1.0]])
        result = ShardResult(li=0, start=0, variance=grid, mean=grid, error_rate=grid)
        back = spool.result_from_record(
            json.loads(spool.canonical_json(spool.result_record(result)))
        )
        assert np.isnan(back.variance[0, 0]) and back.variance[0, 1] == 1.0

    def test_outcome_round_trip(self):
        outcome = WorkerOutcome(
            index=3, generation=1, outcome="ok", latency_s=0.25, worker="w2"
        )
        assert WorkerOutcome.from_dict(outcome.as_dict()) == outcome

    def test_descriptor_bytes_are_generation_free(self, device):
        """The lease generation lives in the filename, never the payload."""
        _, shards = _shards(device)
        descriptor = spool.shard_descriptor(shards[0])
        assert "generation" not in descriptor
        assert set(descriptor) == {
            "li", "location", "start", "multiplicands", "stimulus",
        }


class TestDescriptorNames:
    def test_name_round_trip(self):
        assert spool.parse_descriptor_name(spool.descriptor_name(7, 2)) == (7, 2)

    @pytest.mark.parametrize("name", [
        "shard-00001.json", "shard-1.g0.json", "result-00001.g0.json", "stop",
    ])
    def test_foreign_names_are_ignored(self, name):
        assert spool.parse_descriptor_name(name) is None


class TestLeaseProtocol:
    def _spool(self, device, tmp_path):
        plan, shards = _shards(device)
        spool.create_spool(
            tmp_path, device, plan, shards,
            cache_dir=None, faults=None, kernel="packed",
        )
        return plan, shards

    def test_create_spool_materialises_everything(self, device, tmp_path):
        plan, shards = self._spool(device, tmp_path)
        manifest = spool.read_manifest(tmp_path)
        assert manifest["version"] == spool.SPOOL_VERSION
        assert manifest["n_shards"] == len(shards)
        assert manifest["kernel"] == "packed"
        assert spool.plan_from_descriptor(manifest["plan"]) == plan
        assert len(spool.pending_names(tmp_path)) == len(shards)
        assert spool.load_device(tmp_path).serial == device.serial

    def test_claims_are_mutually_exclusive_and_ordered(self, device, tmp_path):
        _, shards = self._spool(device, tmp_path)
        seen = []
        while (claim := spool.claim_next(tmp_path)) is not None:
            index, generation, lease = claim
            assert generation == 0
            assert lease.exists()
            seen.append(index)
        assert seen == list(range(len(shards)))
        assert spool.pending_names(tmp_path) == []

    def test_requeue_bumps_generation(self, device, tmp_path):
        self._spool(device, tmp_path)
        index, generation, lease = spool.claim_next(tmp_path)
        assert spool.requeue_lease(tmp_path, lease.name) == (index, 1)
        reclaimed = spool.claim_next(tmp_path)
        assert reclaimed[0] == index and reclaimed[1] == 1

    def test_requeue_after_release_is_a_noop(self, device, tmp_path):
        self._spool(device, tmp_path)
        _, _, lease = spool.claim_next(tmp_path)
        spool.release_lease(tmp_path, lease.name)
        assert spool.requeue_lease(tmp_path, lease.name) is None

    def test_requeued_descriptor_bytes_are_unchanged(self, device, tmp_path):
        self._spool(device, tmp_path)
        index, _, lease = spool.claim_next(tmp_path)
        before = lease.read_bytes()
        spool.requeue_lease(tmp_path, lease.name)
        name = spool.descriptor_name(index, 1)
        assert (tmp_path / "pending" / name).read_bytes() == before

    def test_stop_sentinel(self, device, tmp_path):
        self._spool(device, tmp_path)
        assert not spool.stop_requested(tmp_path)
        spool.request_stop(tmp_path)
        assert spool.stop_requested(tmp_path)


class TestResultsAndOutcomes:
    def test_result_write_read(self, device, tmp_path):
        plan, shards = _shards(device)
        spool.create_spool(
            tmp_path, device, plan, shards,
            cache_dir=None, faults=None, kernel="packed",
        )
        grid = np.array([[1.25, -0.5]])
        result = ShardResult(li=0, start=0, variance=grid, mean=grid, error_rate=grid)
        spool.write_result(tmp_path, 0, result)
        back = spool.read_result(tmp_path, 0)
        assert back.variance.tobytes() == grid.tobytes()
        assert spool.read_result(tmp_path, 1) is None

    def test_outcomes_sorted_by_index_then_generation(self, device, tmp_path):
        plan, shards = _shards(device)
        spool.create_spool(
            tmp_path, device, plan, shards,
            cache_dir=None, faults=None, kernel="packed",
        )
        for index, generation in [(2, 0), (0, 1), (0, 0)]:
            spool.write_outcome(tmp_path, WorkerOutcome(
                index=index, generation=generation, outcome="ok", latency_s=0.0,
            ))
        pairs = [(o.index, o.generation) for o in spool.read_outcomes(tmp_path)]
        assert pairs == [(0, 0), (0, 1), (2, 0)]


class TestGeneratedTables:
    def test_spool_layout_covers_every_surface(self):
        table = spool.spool_layout_markdown()
        for needle in ("manifest.json", "device.pkl", "pending/", "leased/",
                       "results/", "outcomes/", "stop"):
            assert needle in table

    def test_descriptor_fields_track_the_dataclass(self):
        import dataclasses

        table = spool.descriptor_fields_markdown()
        for field in dataclasses.fields(Shard):
            assert f"`{field.name}`" in table
