"""PYTHONHASHSEED invariance: the reference sweep is hash-salt blind.

Python salts string hashes per process (`PYTHONHASHSEED`), so any code
whose results leak set/dict-view iteration order — exactly what rule
DT004 polices statically — produces different bytes under different
seeds.  This regression runs the small reference sweep in *subprocesses*
(the seed only takes effect at interpreter startup) under two different
hash seeds and asserts the `SweepOutcome` sidecar JSON and the result
grids are byte-identical.  Attempt latencies are wall-clock execution
provenance — excluded from result equality by contract — so the sidecar
is compared with `latency_s` canonicalised to zero.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

_SWEEP_SCRIPT = """
import hashlib, json, sys

from repro.characterization import CharacterizationConfig, characterize_multiplier
from repro.fabric import DeviceFamily, make_device

device = make_device(
    serial=1234, family=DeviceFamily(name="test-family", rows=64, cols=64)
)
cfg = CharacterizationConfig(
    freqs_mhz=(280.0, 320.0),
    n_samples=24,
    multiplicands=tuple(range(6)),
    n_locations=2,
    segment_chunk=3,
)
result = characterize_multiplier(device, 6, 4, cfg, seed=9, jobs=1)

sidecar = result.outcome.as_dict()
# latency_s is wall-clock execution provenance (excluded from result
# equality by contract); everything else in the sidecar must be stable.
for report in sidecar["reports"]:
    for attempt in report["attempts"]:
        attempt["latency_s"] = 0.0

print(json.dumps({
    "variance": hashlib.sha256(result.variance.tobytes()).hexdigest(),
    "mean": hashlib.sha256(result.mean.tobytes()).hexdigest(),
    "error_rate": hashlib.sha256(result.error_rate.tobytes()).hexdigest(),
    "freqs_mhz": list(result.freqs_mhz),
    "multiplicands": [int(m) for m in result.multiplicands],
    "locations": [list(l) for l in result.locations],
    "sidecar": sidecar,
}, sort_keys=True))
"""


def _run_under_hashseed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SWEEP_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


@pytest.mark.slow
def test_reference_sweep_invariant_under_hashseed():
    first = _run_under_hashseed("1")
    second = _run_under_hashseed("4242")
    assert first == second, (
        "sweep output depends on PYTHONHASHSEED: some code path leaks "
        "set/dict-view iteration order (see DT004 in docs/static_analysis.md)"
    )
    # Sanity: the payload really carries the grids and the sidecar.
    payload = json.loads(first)
    assert payload["sidecar"]["status"] == "complete"
    assert len(payload["variance"]) == 64
