"""Thread-safety of one shared PlacedDesignCache handle.

The job server hands its single warm cache to every worker thread; the
in-process mutex must keep the memory tier and the counters coherent
while the fcntl entry locks keep cross-process installs safe (covered by
``tests/parallel/test_sanitize.py``).  Here: many threads, few keys, one
handle — every requester gets a bit-identical design and the counters
add up exactly.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.parallel.cache import PlacedDesignCache

KEYS = [(6, 3, (0, 0), 0), (6, 4, (1, 1), 1), (7, 3, (2, 2), 2), (7, 4, (0, 3), 3)]
N_THREADS = 8


@pytest.mark.parametrize("disk_backed", [True, False])
def test_shared_handle_threads(tmp_path, device, disk_backed):
    cache = PlacedDesignCache(tmp_path / "placed" if disk_backed else None)
    results: dict[int, list] = {i: [] for i in range(N_THREADS)}
    errors: list[Exception] = []
    barrier = threading.Barrier(N_THREADS)

    def worker(index: int) -> None:
        try:
            barrier.wait(10.0)
            for w_a, w_b, anchor, seed in KEYS:
                placed = cache.get_or_place(device, w_a, w_b, anchor, seed)
                results[index].append(placed)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60.0)
    assert errors == []

    # Every thread got a design for every key, and for any given key all
    # threads hold bit-identical payloads (racing placements of the same
    # key must converge on one deterministic result).
    reference = results[0]
    assert len(reference) == len(KEYS)
    for index in range(1, N_THREADS):
        for got, want in zip(results[index], reference):
            assert pickle.dumps(got) == pickle.dumps(want)

    stats = cache.stats()
    requests = N_THREADS * len(KEYS)
    assert stats.memory_hits + stats.disk_hits + stats.misses == requests
    # Racing threads may synthesise the same key concurrently (both
    # results are identical), but never fewer than one miss per key.
    assert len(KEYS) <= stats.misses <= requests
    assert stats.corruptions == 0
    # After the dust settles the memory tier serves everything.
    for w_a, w_b, anchor, seed in KEYS:
        cache.get_or_place(device, w_a, w_b, anchor, seed)
    assert cache.stats().memory_hits >= stats.memory_hits + len(KEYS)
