"""Tests for repro.parallel.cache — the placed-design cache."""

import numpy as np
import pytest

from repro.fabric.conditions import OperatingConditions
from repro.parallel.cache import (
    PlacedDesignCache,
    PlacedKey,
    get_default_cache,
    set_default_cache,
)
from repro.synthesis import SynthesisFlow
from repro.parallel.cache import multiplier_netlist


@pytest.fixture()
def cache(tmp_path):
    return PlacedDesignCache(tmp_path / "placed")


class TestPlacedKey:
    def test_includes_operating_conditions(self, device):
        hot = device.with_conditions(OperatingConditions(temperature_c=85.0))
        k_cold = PlacedKey.for_device(device, 8, 8, (0, 0), 0)
        k_hot = PlacedKey.for_device(hot, 8, 8, (0, 0), 0)
        assert k_cold != k_hot
        assert k_cold.digest() != k_hot.digest()

    def test_digest_stable(self, device):
        a = PlacedKey.for_device(device, 8, 8, (3, 4), 7)
        b = PlacedKey.for_device(device, 8, 8, (3, 4), 7)
        assert a.digest() == b.digest()


class TestPlacedDesignCache:
    def test_miss_then_memory_hit(self, device, cache):
        p1 = cache.get_or_place(device, 8, 8, (0, 0), 0)
        p2 = cache.get_or_place(device, 8, 8, (0, 0), 0)
        assert p1 is p2
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.memory_hits == 1
        assert stats.stores == 1

    def test_matches_direct_synthesis(self, device, cache):
        placed = cache.get_or_place(device, 8, 8, (2, 2), 5)
        direct = SynthesisFlow(device).run(
            multiplier_netlist(8, 8), anchor=(2, 2), seed=5, lint=False
        )
        assert np.array_equal(placed.node_delay, direct.node_delay)
        assert np.array_equal(placed.edge_delay, direct.edge_delay)
        assert placed.setup_ns == direct.setup_ns

    def test_disk_round_trip(self, device, tmp_path):
        directory = tmp_path / "placed"
        first = PlacedDesignCache(directory)
        p1 = first.get_or_place(device, 8, 8, (1, 1), 3)
        # A fresh instance has an empty memory map: must load from disk.
        second = PlacedDesignCache(directory)
        p2 = second.get_or_place(device, 8, 8, (1, 1), 3)
        assert second.stats().disk_hits == 1
        assert np.array_equal(p1.node_delay, p2.node_delay)
        assert np.array_equal(p1.edge_delay, p2.edge_delay)

    def test_distinct_keys_do_not_alias(self, device, cache):
        a = cache.get_or_place(device, 8, 8, (0, 0), 0)
        b = cache.get_or_place(device, 8, 8, (4, 4), 0)
        c = cache.get_or_place(device, 8, 8, (0, 0), 1)
        assert cache.stats().misses == 3
        assert not np.array_equal(a.node_delay, b.node_delay)
        assert a is not c

    def test_conditions_do_not_alias(self, device, tmp_path):
        cache = PlacedDesignCache(tmp_path / "placed")
        cold = cache.get_or_place(device, 8, 8, (0, 0), 0)
        hot_dev = device.with_conditions(OperatingConditions(temperature_c=85.0))
        hot = cache.get_or_place(hot_dev, 8, 8, (0, 0), 0)
        assert cache.stats().misses == 2
        assert not np.array_equal(cold.node_delay, hot.node_delay)

    def test_corrupt_disk_entry_is_a_miss(self, device, tmp_path):
        directory = tmp_path / "placed"
        first = PlacedDesignCache(directory)
        first.get_or_place(device, 8, 8, (0, 0), 0)
        (entry,) = first.disk_entries()
        entry.write_bytes(b"not a pickle")
        second = PlacedDesignCache(directory)
        second.get_or_place(device, 8, 8, (0, 0), 0)
        assert second.stats().misses == 1  # fell back to synthesis


def _write_one_entry(device, directory):
    """Synthesise one placement into a fresh disk cache; returns its path."""
    cache = PlacedDesignCache(directory)
    placed = cache.get_or_place(device, 8, 8, (0, 0), 0)
    (entry,) = cache.disk_entries()
    return placed, entry


class TestCorruptionRecovery:
    """Damaged disk entries must rebuild transparently — and loudly.

    Every flavour of damage follows the same contract: the load is
    *rejected* (not trusted by luck), a warning is logged, the
    ``corruptions`` counter ticks, the entry is removed, and the miss
    path rebuilds it bit-identically (the build is pure in the key).
    """

    def _assert_rebuilt(self, device, directory, placed, caplog):
        import logging

        fresh = PlacedDesignCache(directory)
        with caplog.at_level(logging.WARNING, logger="repro.parallel.cache"):
            rebuilt = fresh.get_or_place(device, 8, 8, (0, 0), 0)
        stats = fresh.stats()
        assert stats.corruptions == 1
        assert stats.misses == 1 and stats.disk_hits == 0
        assert any("rebuilding from synthesis" in r.message for r in caplog.records)
        assert np.array_equal(rebuilt.node_delay, placed.node_delay)
        assert np.array_equal(rebuilt.edge_delay, placed.edge_delay)
        # The rebuild re-stored a valid entry: the next instance hits disk.
        after = PlacedDesignCache(directory)
        after.get_or_place(device, 8, 8, (0, 0), 0)
        assert after.stats().disk_hits == 1
        assert after.stats().corruptions == 0

    def test_truncated_pickle_rebuilds(self, device, tmp_path, caplog):
        placed, entry = _write_one_entry(device, tmp_path / "placed")
        entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 3])
        self._assert_rebuilt(device, tmp_path / "placed", placed, caplog)

    def test_checksum_mismatch_rebuilds(self, device, tmp_path, caplog):
        placed, entry = _write_one_entry(device, tmp_path / "placed")
        raw = bytearray(entry.read_bytes())
        raw[-100] ^= 0xFF  # flip a byte deep in the pickled design blob
        entry.write_bytes(bytes(raw))
        self._assert_rebuilt(device, tmp_path / "placed", placed, caplog)

    def test_torn_concurrent_write_rebuilds(self, device, tmp_path, caplog):
        # A torn file from a crashed concurrent writer: the head of one
        # valid entry spliced onto the tail of another write.
        placed, entry = _write_one_entry(device, tmp_path / "placed")
        raw = entry.read_bytes()
        entry.write_bytes(raw[: len(raw) // 2] + raw[: len(raw) // 2])
        self._assert_rebuilt(device, tmp_path / "placed", placed, caplog)

    def test_stale_version_rebuilds(self, device, tmp_path, caplog):
        import pickle

        placed, entry = _write_one_entry(device, tmp_path / "placed")
        entry.write_bytes(pickle.dumps({"version": 1, "placed": placed}))
        self._assert_rebuilt(device, tmp_path / "placed", placed, caplog)

    def test_damaged_entry_is_removed_from_disk(self, device, tmp_path):
        placed, entry = _write_one_entry(device, tmp_path / "placed")
        entry.write_bytes(b"garbage")
        fresh = PlacedDesignCache(tmp_path / "placed")
        fresh.get_or_place(device, 8, 8, (0, 0), 0)
        # Exactly one (valid, re-stored) entry remains — the damaged file
        # was unlinked before the rebuild wrote its replacement.
        (remaining,) = fresh.disk_entries()
        assert remaining == entry
        assert fresh.stats().corruptions == 1

    def test_corruptions_counter_in_stats_dict(self, device, cache):
        assert cache.stats().as_dict()["corruptions"] == 0

    def test_clear_removes_everything(self, device, cache):
        cache.get_or_place(device, 8, 8, (0, 0), 0)
        assert cache.clear(disk=True) == 1
        stats = cache.stats()
        assert stats.memory_entries == 0
        assert stats.disk_entries == 0

    def test_stats_dict_shape(self, device, cache):
        cache.get_or_place(device, 8, 8, (0, 0), 0)
        d = cache.stats().as_dict()
        for key in ("memory_hits", "disk_hits", "misses", "stores",
                    "disk_entries", "disk_bytes", "hit_rate", "directory"):
            assert key in d
        assert cache.stats().hit_rate == 0.0
        cache.get_or_place(device, 8, 8, (0, 0), 0)
        assert cache.stats().hit_rate == 0.5

    def test_memory_only_cache_has_no_disk(self, device):
        cache = PlacedDesignCache()
        cache.get_or_place(device, 8, 8, (0, 0), 0)
        assert cache.disk_entries() == []
        assert cache.stats().directory is None


class TestDefaultCache:
    def test_env_configures_directory(self, monkeypatch, tmp_path):
        set_default_cache(None)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        try:
            assert get_default_cache().directory == tmp_path / "env-cache"
        finally:
            set_default_cache(None)

    def test_default_is_memory_only(self, monkeypatch):
        set_default_cache(None)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        try:
            assert get_default_cache().directory is None
        finally:
            set_default_cache(None)
