"""CLI coverage for the parallel engine: cache subcommand, --jobs flags."""

import json

import pytest

from repro.cli import main as experiment_main
from repro.cli_flow import main as flow_main
from repro.parallel.cache import PlacedDesignCache, multiplier_netlist
from repro.synthesis import SynthesisFlow


@pytest.fixture()
def populated_cache_dir(device, tmp_path):
    directory = tmp_path / "placed"
    cache = PlacedDesignCache(directory)
    cache.get_or_place(device, 8, 8, (0, 0), 0)
    cache.get_or_place(device, 8, 8, (4, 4), 0)
    return directory


class TestCacheCli:
    def test_info_text(self, populated_cache_dir, capsys):
        assert experiment_main(["cache", "info", "--dir", str(populated_cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "disk_entries: 2" in out

    def test_info_json(self, populated_cache_dir, capsys):
        rc = experiment_main(
            ["cache", "info", "--dir", str(populated_cache_dir), "--format", "json"]
        )
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["disk_entries"] == 2
        assert stats["disk_bytes"] > 0

    def test_clear(self, populated_cache_dir, capsys):
        assert experiment_main(["cache", "clear", "--dir", str(populated_cache_dir)]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert list(populated_cache_dir.glob("*.pkl")) == []

    def test_env_fallback(self, populated_cache_dir, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(populated_cache_dir))
        assert experiment_main(["cache", "info"]) == 0
        assert "disk_entries: 2" in capsys.readouterr().out

    def test_no_directory_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert experiment_main(["cache", "info"]) == 2
        assert "no cache directory" in capsys.readouterr().err


class TestCacheVerify:
    def test_clean_cache_verifies(self, populated_cache_dir, capsys):
        rc = experiment_main(
            ["cache", "verify", "--dir", str(populated_cache_dir)]
        )
        assert rc == 0
        assert "verified 2 entries" in capsys.readouterr().out

    def test_verify_flag_is_shorthand(self, populated_cache_dir, capsys):
        rc = experiment_main(
            ["cache", "--verify", "--dir", str(populated_cache_dir)]
        )
        assert rc == 0
        assert "0 problem(s)" in capsys.readouterr().out

    def test_torn_entry_is_reported_not_rebuilt(self, populated_cache_dir, capsys):
        victim = sorted(populated_cache_dir.glob("*.pkl"))[0]
        victim.write_bytes(b"garbage")
        rc = experiment_main(
            ["cache", "verify", "--dir", str(populated_cache_dir)]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "1 problem(s)" in out
        assert victim.name in out
        # read-only: the damaged entry is still on disk, untouched
        assert victim.read_bytes() == b"garbage"

    def test_misfiled_entry_is_reported(self, populated_cache_dir, capsys):
        a, b = sorted(populated_cache_dir.glob("*.pkl"))[:2]
        misfiled = a.with_name("0" * len(a.stem) + ".pkl")
        misfiled.write_bytes(b.read_bytes())
        rc = experiment_main(
            ["cache", "verify", "--dir", str(populated_cache_dir)]
        )
        assert rc == 1
        assert "does not match its key digest" in capsys.readouterr().out

    def test_json_report(self, populated_cache_dir, capsys):
        sorted(populated_cache_dir.glob("*.pkl"))[0].write_bytes(b"junk")
        rc = experiment_main(
            ["cache", "verify", "--dir", str(populated_cache_dir),
             "--format", "json"]
        )
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 2
        assert len(report["problems"]) == 1
        assert "undecodable envelope" in report["problems"][0]["problem"]

    def test_verify_never_touches_counters_or_files(self, populated_cache_dir):
        before = sorted(p.name for p in populated_cache_dir.glob("*.pkl"))
        cache = PlacedDesignCache(populated_cache_dir)
        assert cache.verify() == []
        assert cache.stats().corruptions == 0
        assert sorted(p.name for p in populated_cache_dir.glob("*.pkl")) == before


class TestFlowJobs:
    @pytest.fixture()
    def workspace(self, tmp_path):
        ws = tmp_path / "ws"
        assert flow_main(["init", str(ws), "--serial", "7", "--scale", "0.012"]) == 0
        return ws

    def test_characterize_rejects_bad_jobs(self, workspace, capsys):
        assert flow_main(["characterize", str(workspace), "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_optimize_rejects_bad_jobs(self, workspace, capsys):
        assert flow_main(["optimize", str(workspace), "--jobs", "-3"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_status_reports_cache(self, workspace, capsys):
        assert flow_main(["status", str(workspace)]) == 0
        assert "placed-design cache" in capsys.readouterr().out

    def test_characterize_populates_workspace_cache(self, workspace, capsys):
        # One real (tiny-scale) characterisation run: the CLI must leave
        # the placements in the workspace cache and report them via the
        # cache subcommand's --workspace flag.
        assert flow_main(["characterize", str(workspace), "--jobs", "1"]) == 0
        cache_dir = workspace / "cache" / "placed"
        assert len(list(cache_dir.glob("*.pkl"))) > 0
        capsys.readouterr()
        rc = experiment_main(["cache", "info", "--workspace", str(workspace)])
        assert rc == 0
        assert "disk_entries" in capsys.readouterr().out


class TestFlowExecutorFlag:
    @pytest.fixture()
    def workspace(self, tmp_path):
        ws = tmp_path / "ws"
        assert flow_main(["init", str(ws), "--serial", "7", "--scale", "0.012"]) == 0
        return ws

    def test_serial_executor_matches_default(self, tmp_path, capsys):
        default_ws = tmp_path / "default_ws"
        serial_ws = tmp_path / "serial_ws"
        for ws in (default_ws, serial_ws):
            assert flow_main(
                ["init", str(ws), "--serial", "7", "--scale", "0.012"]
            ) == 0
        assert flow_main(["characterize", str(default_ws)]) == 0
        assert flow_main(
            ["characterize", str(serial_ws), "--executor", "serial"]
        ) == 0
        default_npz = sorted((default_ws / "characterization").glob("wl*.npz"))
        serial_npz = sorted((serial_ws / "characterization").glob("wl*.npz"))
        assert default_npz and len(default_npz) == len(serial_npz)
        for a, b in zip(default_npz, serial_npz):
            assert a.read_bytes() == b.read_bytes()

    def test_unknown_env_executor_is_a_config_error(
        self, workspace, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_EXECUTOR", "redis")
        assert flow_main(["characterize", str(workspace)]) == 2
        assert "unknown shard executor" in capsys.readouterr().err
