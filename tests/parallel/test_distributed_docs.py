"""The generated tables in docs/distributed.md are generated; keep it so.

Same contract as tests/obs/test_docs_drift.py: each block between
``<name>:begin`` / ``<name>:end`` markers must byte-match (modulo
surrounding whitespace) the markdown renderer it names, and the prose
around the tables must keep naming the operator surfaces it documents.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.parallel.executors import EXECUTOR_NAMES, executors_table_markdown
from repro.parallel.spool import (
    SPOOL_LAYOUT,
    descriptor_fields_markdown,
    spool_layout_markdown,
)

DOCS = Path(__file__).resolve().parents[2] / "docs"
DOC = DOCS / "distributed.md"

GENERATED_BLOCKS = {
    "executors-table": executors_table_markdown,
    "spool-layout": spool_layout_markdown,
    "descriptor-fields": descriptor_fields_markdown,
}


def _doc_block(name: str) -> str:
    text = DOC.read_text()
    begin, end = f"<!-- {name}:begin", f"<!-- {name}:end -->"
    assert begin in text and end in text, f"{name} markers missing"
    start = text.index("\n", text.index(begin)) + 1
    return text[start : text.index(end)].strip()


@pytest.mark.parametrize("name", sorted(GENERATED_BLOCKS))
def test_generated_block_matches_renderer(name):
    assert _doc_block(name) == GENERATED_BLOCKS[name]().strip(), (
        f"docs/distributed.md {name} block is stale; regenerate it with "
        f"{GENERATED_BLOCKS[name].__module__}.{GENERATED_BLOCKS[name].__name__}()"
    )


def test_every_executor_documented_exactly_once():
    table = _doc_block("executors-table")
    for name in EXECUTOR_NAMES:
        assert table.count(f"| `{name}` |") == 1


def test_every_spool_surface_documented():
    table = _doc_block("spool-layout")
    for entry in SPOOL_LAYOUT:
        assert f"`{entry.path}`" in table


def test_doc_mentions_the_surfaces():
    text = DOC.read_text()
    for needle in (
        "repro worker",
        "--executor file-queue",
        "REPRO_EXECUTOR",
        "--worker-id",
        "--max-shards",
        "lease_timeout_s",
        "repro cache verify",
        "spool.queue.v1",
        "shard.descriptor.v1",
        "sweep.executor",                 # obs cross-reference
        "executor.leases.requeued",
        "BENCH_distributed.json",
        "tests/parallel/test_executors.py",
        "scripts/check.sh",
        "DEGRADED",
    ):
        assert needle in text, f"docs/distributed.md lost {needle}"


def test_runbook_covers_the_failure_modes():
    text = DOC.read_text()
    assert "## Failure runbook" in text
    for needle in (
        "requeues",
        "unreadable descriptor",
        "checksum mismatch",
        "spool speaks version",
        "workers/",
    ):
        assert needle in text, f"runbook lost {needle}"
