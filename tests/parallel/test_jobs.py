"""Tests for repro.parallel.jobs — the worker-count knob."""

import pytest

from repro.errors import ConfigError
from repro.parallel.jobs import REPRO_JOBS_ENV, resolve_jobs


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(REPRO_JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(REPRO_JOBS_ENV, "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(REPRO_JOBS_ENV, "4")
        assert resolve_jobs(None) == 4

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigError):
            resolve_jobs(bad)

    def test_rejects_non_integers(self):
        with pytest.raises(ConfigError):
            resolve_jobs(2.5)
        with pytest.raises(ConfigError):
            resolve_jobs(True)

    def test_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv(REPRO_JOBS_ENV, "many")
        with pytest.raises(ConfigError):
            resolve_jobs(None)

    def test_rejects_non_positive_env(self, monkeypatch):
        monkeypatch.setenv(REPRO_JOBS_ENV, "0")
        with pytest.raises(ConfigError):
            resolve_jobs(None)

    @pytest.mark.parametrize("bad", ["-3", "2.5", "1e2", "0x4", ""])
    def test_rejects_malformed_env_values(self, monkeypatch, bad):
        monkeypatch.setenv(REPRO_JOBS_ENV, bad)
        with pytest.raises(ConfigError):
            resolve_jobs(None)

    def test_env_whitespace_tolerated(self, monkeypatch):
        # int() strips whitespace; the knob should match that leniency.
        monkeypatch.setenv(REPRO_JOBS_ENV, "  4  ")
        assert resolve_jobs(None) == 4

    def test_explicit_arg_ignores_broken_env(self, monkeypatch):
        # Precedence means a bad env value cannot poison an explicit arg.
        monkeypatch.setenv(REPRO_JOBS_ENV, "many")
        assert resolve_jobs(2) == 2

    def test_error_names_the_source(self, monkeypatch):
        monkeypatch.setenv(REPRO_JOBS_ENV, "-1")
        with pytest.raises(ConfigError, match=REPRO_JOBS_ENV):
            resolve_jobs(None)
        monkeypatch.delenv(REPRO_JOBS_ENV, raising=False)
        with pytest.raises(ConfigError, match="jobs"):
            resolve_jobs(0)

    def test_large_counts_pass_through(self, monkeypatch):
        monkeypatch.delenv(REPRO_JOBS_ENV, raising=False)
        assert resolve_jobs(128) == 128
