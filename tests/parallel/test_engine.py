"""Tests for repro.parallel.engine — determinism across worker counts.

The headline property of the engine: the worker count is a pure
wall-clock knob.  ``jobs=4`` must reproduce the ``jobs=1`` grids bit for
bit, and a warm placed-design cache must not change a single number.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.characterization import characterize_multiplier
from repro.parallel import PlacedDesignCache, execute_shards
from repro.parallel.engine import _segment_statistics


def _grids_equal(a, b) -> bool:
    return (
        np.array_equal(a.variance, b.variance)
        and np.array_equal(a.mean, b.mean)
        and np.array_equal(a.error_rate, b.error_rate)
        and np.array_equal(a.freqs_mhz, b.freqs_mhz)
        and np.array_equal(a.multiplicands, b.multiplicands)
        and a.locations == b.locations
    )


class TestSegmentStatistics:
    def test_matches_python_loop(self):
        rng = np.random.default_rng(0)
        n_segments, seg_len, n_f = 5, 9, 3
        n_tr = n_segments * seg_len - 1
        errors = rng.integers(-50, 50, size=(n_f, n_tr)).astype(np.int64)
        variance, mean, rate = _segment_statistics(errors, n_segments, seg_len)
        assert variance.shape == (n_segments, n_f)

        valid = np.ones(n_tr, dtype=bool)
        valid[np.arange(1, n_segments) * seg_len - 1] = False
        seg_of = np.arange(n_tr) // seg_len
        for fi in range(n_f):
            for ci in range(n_segments):
                e = errors[fi][valid & (seg_of == ci)]
                assert mean[ci, fi] == e.mean()
                assert rate[ci, fi] == (e != 0).mean()
                assert np.isclose(variance[ci, fi], e.var(), rtol=1e-12)

    def test_single_segment_has_no_boundary(self):
        errors = np.array([[1, -1, 0, 2]], dtype=np.int64)
        variance, mean, rate = _segment_statistics(errors, 1, 5)
        assert mean[0, 0] == 0.5
        assert rate[0, 0] == 0.75


class TestWorkerCountInvariance:
    @pytest.mark.slow
    def test_pool_matches_serial(self, device, small_char_config):
        cfg = small_char_config()
        serial = characterize_multiplier(device, 8, 8, cfg, seed=3, jobs=1)
        pooled = characterize_multiplier(device, 8, 8, cfg, seed=3, jobs=4)
        assert _grids_equal(serial, pooled)

    @pytest.mark.slow
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 2**16), chunk=st.sampled_from([3, 4, 8]))
    def test_sharding_never_perturbs_grids(self, device, small_char_config, seed, chunk):
        """Property: any (seed, shard shape) gives jobs-invariant grids."""
        cfg = small_char_config(n_mult=8, chunk=chunk)
        serial = characterize_multiplier(device, 8, 8, cfg, seed=seed, jobs=1)
        pooled = characterize_multiplier(device, 8, 8, cfg, seed=seed, jobs=4)
        assert _grids_equal(serial, pooled)

    def test_warm_cache_run_equals_cold(self, device, small_char_config, tmp_path):
        cfg = small_char_config()
        cache = PlacedDesignCache(tmp_path / "placed")
        cold = characterize_multiplier(device, 8, 8, cfg, seed=7, cache=cache)
        assert cache.stats().misses > 0
        warm_cache = PlacedDesignCache(tmp_path / "placed")
        warm = characterize_multiplier(device, 8, 8, cfg, seed=7, cache=warm_cache)
        stats = warm_cache.stats()
        assert stats.misses == 0
        assert stats.disk_hits > 0
        assert _grids_equal(cold, warm)

    @pytest.mark.slow
    def test_pool_workers_share_disk_cache(self, device, small_char_config, tmp_path):
        cfg = small_char_config()
        cache = PlacedDesignCache(tmp_path / "placed")
        characterize_multiplier(device, 8, 8, cfg, seed=1, jobs=2, cache=cache)
        # Each probed location's placement landed in the shared store.
        assert len(cache.disk_entries()) >= cfg.n_locations

    def test_empty_shard_list(self, device):
        from repro.parallel import SweepPlan

        plan = SweepPlan(
            w_data=8,
            w_coeff=8,
            seed=0,
            freqs_mhz=(300.0,),
            achieved_mhz=(300.0,),
            n_samples=10,
            max_stream_depth=32768,
        )
        assert execute_shards(device, plan, [], jobs=4) == []
