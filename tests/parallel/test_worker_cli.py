"""Tests for repro.parallel.worker — the stateless spool drainer.

Exercises ``drain_spool`` in-process (no subprocess spawn) against
hand-built spools: clean drains, error outcomes, the ``--max-shards``
bound, version refusal, and the result-before-outcome install ordering
the coordinator relies on.
"""

import json

import pytest

from repro.characterization import plan_characterization
from repro.errors import ConfigError
from repro.parallel import spool
from repro.parallel.engine import run_shard
from repro.parallel.cache import PlacedDesignCache
from repro.parallel.worker import drain_spool, worker_main


@pytest.fixture
def spooled(device, small_char_config, tmp_path):
    planned = plan_characterization(device, 8, 8, small_char_config(), seed=5)
    root = tmp_path / "spool"
    spool.create_spool(
        root, device, planned.plan, list(planned.shards),
        cache_dir=str(tmp_path / "cache"), faults=None, kernel="packed",
    )
    return root, planned


class TestDrainSpool:
    def test_drains_everything_and_reports(self, spooled, tmp_path):
        root, planned = spooled
        spool.request_stop(root)
        executed = drain_spool(root, worker_id="w7")
        assert executed == len(planned.shards)
        assert spool.pending_names(root) == []
        assert spool.leased_names(root) == []
        outcomes = spool.read_outcomes(root)
        assert len(outcomes) == len(planned.shards)
        assert all(o.outcome == "ok" and o.worker == "w7" for o in outcomes)
        for index in range(len(planned.shards)):
            assert spool.read_result(root, index) is not None

    def test_results_match_in_process_execution(self, spooled, tmp_path):
        root, planned = spooled
        spool.request_stop(root)
        drain_spool(root)
        cache = PlacedDesignCache(str(tmp_path / "cache2"))
        for index, shard in enumerate(planned.shards):
            direct = run_shard(
                spool.load_device(root), planned.plan, shard, cache
            )
            spooled_result = spool.read_result(root, index)
            assert spooled_result.variance.tobytes() == direct.variance.tobytes()
            assert spooled_result.mean.tobytes() == direct.mean.tobytes()
            assert (
                spooled_result.error_rate.tobytes()
                == direct.error_rate.tobytes()
            )

    def test_max_shards_bounds_the_drain(self, spooled):
        root, planned = spooled
        executed = drain_spool(root, max_shards=2)
        assert executed == 2
        remaining = len(planned.shards) - 2
        assert len(spool.pending_names(root)) == remaining

    def test_corrupt_descriptor_yields_error_outcome(self, spooled):
        root, planned = spooled
        name = spool.pending_names(root)[0]
        target = root / spool.PENDING_DIR / name
        target.write_text(json.dumps({"li": 0}), "utf-8")
        spool.request_stop(root)
        executed = drain_spool(root)
        assert executed == len(planned.shards) - 1
        errors = [o for o in spool.read_outcomes(root) if o.outcome == "error"]
        assert len(errors) == 1
        assert errors[0].detail  # carries the exception text

    def test_missing_manifest_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="no spool manifest"):
            drain_spool(tmp_path / "nowhere")

    def test_foreign_version_is_refused(self, spooled):
        root, _ = spooled
        manifest = spool.read_manifest(root)
        manifest["version"] = 99
        (root / spool.MANIFEST_NAME).write_text(
            spool.canonical_json(manifest), "utf-8"
        )
        with pytest.raises(ConfigError, match="speaks version"):
            drain_spool(root)


class TestWorkerMain:
    def test_cli_drains_and_prints(self, spooled, capsys):
        root, planned = spooled
        spool.request_stop(root)
        code = worker_main([str(root), "--worker-id", "w3"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"executed {len(planned.shards)} shard(s)" in out

    def test_cli_max_shards(self, spooled, capsys):
        root, _ = spooled
        assert worker_main([str(root), "--max-shards", "1"]) == 0
        assert "executed 1 shard(s)" in capsys.readouterr().out

    def test_cli_unusable_spool_exits_2(self, tmp_path, capsys):
        assert worker_main([str(tmp_path)]) == 2
        assert "no spool manifest" in capsys.readouterr().err

    def test_repro_cli_dispatches_worker(self, spooled, capsys):
        from repro.cli import main

        root, _ = spooled
        spool.request_stop(root)
        assert main(["worker", str(root), "--worker-id", "w1"]) == 0
        assert "worker w1" in capsys.readouterr().out
