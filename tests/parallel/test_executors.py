"""Tests for repro.parallel.executors — topology is a pure wall-clock knob.

The headline guarantee of the distributed fabric: artefacts are
byte-identical across executor choice, worker count and worker
join/leave timing.  The chaos tests kill and stall file-queue workers
mid-shard and demand the stale-lease requeue path reproduce the serial
grids bit for bit.
"""

import numpy as np
import pytest

from repro.characterization import characterize_multiplier, plan_characterization
from repro.errors import ConfigError
from repro.faults import FaultPlan, FaultSpec
from repro.parallel import spool
from repro.parallel.executors import (
    EXECUTOR_CATALOG,
    EXECUTOR_NAMES,
    REPRO_EXECUTOR_ENV,
    FileQueueExecutor,
    PoolExecutor,
    SerialExecutor,
    executors_table_markdown,
    resolve_executor,
)


def _grid_bytes(result):
    return (
        result.variance.tobytes()
        + result.mean.tobytes()
        + result.error_rate.tobytes()
    )


class TestResolveExecutor:
    def test_default_is_pool(self, monkeypatch):
        monkeypatch.delenv(REPRO_EXECUTOR_ENV, raising=False)
        assert isinstance(resolve_executor(None), PoolExecutor)

    def test_env_names_the_default(self, monkeypatch):
        monkeypatch.setenv(REPRO_EXECUTOR_ENV, "serial")
        assert isinstance(resolve_executor(None), SerialExecutor)

    @pytest.mark.parametrize("name,cls", [
        ("pool", PoolExecutor),
        ("serial", SerialExecutor),
        ("file-queue", FileQueueExecutor),
    ])
    def test_names_resolve(self, name, cls):
        assert isinstance(resolve_executor(name), cls)

    def test_instances_pass_through(self):
        executor = FileQueueExecutor(workers=3)
        assert resolve_executor(executor) is executor

    def test_unknown_name_is_a_config_error(self):
        with pytest.raises(ConfigError, match="unknown shard executor"):
            resolve_executor("redis")

    def test_catalogue_names_match_resolver(self):
        assert EXECUTOR_NAMES == ("pool", "serial", "file-queue")
        for name in EXECUTOR_NAMES:
            assert resolve_executor(name).name == name

    def test_markdown_table_lists_every_executor(self):
        table = executors_table_markdown()
        for info in EXECUTOR_CATALOG:
            assert f"`{info.name}`" in table


class TestDescriptorByteStability:
    """Satellite regression: one SweepPlan, one descriptor byte stream.

    The shard descriptors a coordinator would spool are a pure function
    of the plan — running the sweep under any executor must not perturb
    them, or distributed and local runs would disagree about the work
    itself.
    """

    def _descriptor_blob(self, device, cfg, seed):
        planned = plan_characterization(device, 8, 8, cfg, seed=seed)
        return b"".join(
            spool.canonical_json(spool.shard_descriptor(s)).encode("utf-8")
            for s in planned.shards
        )

    def test_replanning_is_byte_stable(self, device, small_char_config):
        cfg = small_char_config()
        assert (
            self._descriptor_blob(device, cfg, 11)
            == self._descriptor_blob(device, cfg, 11)
        )

    @pytest.mark.slow
    def test_descriptors_identical_under_every_executor(
        self, device, small_char_config
    ):
        cfg = small_char_config()
        blobs = set()
        for name in EXECUTOR_NAMES:
            executor = (
                FileQueueExecutor(workers=2) if name == "file-queue" else name
            )
            characterize_multiplier(
                device, 8, 8, cfg, seed=11, jobs=2, executor=executor
            )
            blobs.add(self._descriptor_blob(device, cfg, 11))
        assert len(blobs) == 1


class TestExecutorByteIdentity:
    @pytest.mark.slow
    def test_all_executors_reproduce_serial_grids(self, device, small_char_config):
        cfg = small_char_config()
        reference = characterize_multiplier(
            device, 8, 8, cfg, seed=3, jobs=1, executor="serial"
        )
        for executor in ("pool", FileQueueExecutor(workers=2)):
            other = characterize_multiplier(
                device, 8, 8, cfg, seed=3, jobs=2, executor=executor
            )
            assert _grid_bytes(other) == _grid_bytes(reference)
            assert np.array_equal(other.freqs_mhz, reference.freqs_mhz)

    @pytest.mark.slow
    def test_worker_count_never_changes_bytes(self, device, small_char_config):
        cfg = small_char_config()
        one = characterize_multiplier(
            device, 8, 8, cfg, seed=9, executor=FileQueueExecutor(workers=1)
        )
        four = characterize_multiplier(
            device, 8, 8, cfg, seed=9, executor=FileQueueExecutor(workers=4)
        )
        assert _grid_bytes(one) == _grid_bytes(four)


class TestFileQueueChaos:
    """Kill and stall workers mid-shard; the requeue must recover bytes."""

    @pytest.mark.slow
    def test_worker_kill_mid_shard_is_requeued(self, device, small_char_config):
        cfg = small_char_config()
        reference = characterize_multiplier(
            device, 8, 8, cfg, seed=3, executor="serial"
        )
        faults = FaultPlan(
            specs=(FaultSpec(kind="worker-exit", li=0, start=4, times=1),),
            seed=3,
        )
        executor = FileQueueExecutor(workers=4, lease_timeout_s=1.0)
        survived = characterize_multiplier(
            device, 8, 8, cfg, seed=3, executor=executor, faults=faults
        )
        assert executor.last_stats["requeued"] >= 1
        assert _grid_bytes(survived) == _grid_bytes(reference)
        assert survived.outcome.status == "complete"
        assert all(
            r.disposition == "completed" for r in survived.outcome.reports
        )

    @pytest.mark.slow
    def test_stalled_lease_is_requeued(self, device, small_char_config):
        cfg = small_char_config()
        reference = characterize_multiplier(
            device, 8, 8, cfg, seed=3, executor="serial"
        )
        faults = FaultPlan(
            specs=(FaultSpec(kind="lease-stall", li=1, start=0, times=1),),
            seed=3,
        )
        executor = FileQueueExecutor(workers=2, lease_timeout_s=1.0)
        survived = characterize_multiplier(
            device, 8, 8, cfg, seed=3, executor=executor, faults=faults
        )
        assert executor.last_stats["requeued"] >= 1
        assert _grid_bytes(survived) == _grid_bytes(reference)
        assert survived.outcome.status == "complete"

    @pytest.mark.slow
    def test_worker_faults_are_inert_in_process(self, device, small_char_config):
        """worker-exit/lease-stall never fire outside file-queue workers."""
        cfg = small_char_config()
        faults = FaultPlan(
            specs=(FaultSpec(kind="worker-exit", li=None, start=None, times=-1),),
            seed=3,
        )
        reference = characterize_multiplier(device, 8, 8, cfg, seed=3)
        inert = characterize_multiplier(
            device, 8, 8, cfg, seed=3, executor="serial", faults=faults
        )
        assert _grid_bytes(inert) == _grid_bytes(reference)
        assert inert.outcome.status == "complete"
