"""Tests for repro.parallel.sanitize — the runtime cache-race detector.

Unit layer: the checker's three violation kinds fire on manufactured
races and stay silent on disciplined installs.  Integration layer: a
multi-process stress test shares one on-disk cache between N concurrent
processes with ``REPRO_SANITIZE=1`` and asserts zero lost updates, zero
corruption ticks, and bit-identical placements everywhere — plus the
bit-transparency contract: a sweep's results are identical with the
sanitizer on or off.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.characterization import CharacterizationConfig, characterize_multiplier
from repro.fabric import DeviceFamily, make_device
from repro.parallel.cache import PlacedDesignCache, PlacedKey
from repro.parallel.sanitize import (
    CacheSanitizer,
    SanitizerViolation,
    journal_path,
    read_journal,
    sanitize_enabled,
)

FAMILY = DeviceFamily(name="test-family", rows=64, cols=64)


class TestSanitizeEnabled:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "2"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " OFF "])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize_enabled()

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()


class TestCacheWiring:
    def test_cache_attaches_sanitizer_when_enabled(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        cache = PlacedDesignCache(tmp_path / "placed")
        assert cache.sanitizer is not None

    def test_memory_only_cache_has_no_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert PlacedDesignCache().sanitizer is None

    def test_disabled_by_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert PlacedDesignCache(tmp_path / "placed").sanitizer is None

    def test_clean_store_records_no_violations(self, monkeypatch, tmp_path, device):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        cache = PlacedDesignCache(tmp_path / "placed")
        cache.get_or_place(device, 8, 8, (0, 0), 0)
        assert cache.sanitizer.violations == []
        assert cache.stats().sanitizer_violations == 0
        assert read_journal(tmp_path / "placed") == []

    def test_same_key_restore_from_second_instance_is_clean(
        self, monkeypatch, tmp_path, device
    ):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        directory = tmp_path / "placed"
        first = PlacedDesignCache(directory)
        first.get_or_place(device, 8, 8, (1, 1), 3)
        # A second process-alike instance misses memory, hits disk — and
        # even a forced rebuild would install identical bytes.
        second = PlacedDesignCache(directory)
        second.get_or_place(device, 8, 8, (1, 1), 3)
        assert second.stats().disk_hits == 1
        assert second.stats().sanitizer_violations == 0

    def test_clear_removes_lock_files(self, monkeypatch, tmp_path, device):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        directory = tmp_path / "placed"
        cache = PlacedDesignCache(directory)
        cache.get_or_place(device, 8, 8, (0, 0), 0)
        assert list(directory.glob("*.lock"))
        cache.clear(disk=True)
        assert not list(directory.glob("*.lock"))
        assert not list(directory.glob("*.pkl"))


def _store_raw_entry(directory, key, blob: bytes):
    """Plant a valid v2 entry for ``key`` with payload ``blob``."""
    import pickle

    from repro.parallel.cache import _DISK_VERSION

    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key.digest()}.pkl"
    payload = {
        "version": _DISK_VERSION,
        "key": key,
        "sha256": hashlib.sha256(blob).hexdigest(),
        "placed": blob,
    }
    path.write_bytes(pickle.dumps(payload))
    return path


def _key() -> PlacedKey:
    return PlacedKey(
        family="test-family",
        serial=1,
        w_data=8,
        w_coeff=8,
        anchor=(0, 0),
        seed=0,
        temperature_c=25.0,
        vdd=1.0,
        aging_years=0.0,
    )


class TestViolationDetection:
    def test_unlocked_install_flagged(self, tmp_path):
        sanitizer = CacheSanitizer(tmp_path)
        sanitizer.check_install(tmp_path / "abc123.pkl", _key(), "0" * 64)
        (violation,) = [v for v in sanitizer.violations if v.kind == "unlocked-install"]
        assert violation.digest == "abc123"

    def test_locked_install_not_flagged(self, tmp_path):
        sanitizer = CacheSanitizer(tmp_path)
        sanitizer.lock_acquired("abc123")
        sanitizer.check_install(tmp_path / "abc123.pkl", _key(), "0" * 64)
        sanitizer.lock_released("abc123")
        assert not sanitizer.holds_lock("abc123")
        assert sanitizer.violations == []

    def test_lost_update_on_divergent_same_key_payload(self, tmp_path):
        key = _key()
        path = _store_raw_entry(tmp_path, key, b"original payload bytes")
        sanitizer = CacheSanitizer(tmp_path)
        sanitizer.lock_acquired(path.stem)
        different_sha = hashlib.sha256(b"DIFFERENT bytes").hexdigest()
        sanitizer.check_install(path, key, different_sha)
        (violation,) = sanitizer.violations
        assert violation.kind == "lost-update"
        assert "not pure in the key" in violation.detail

    def test_same_payload_reinstall_is_not_lost_update(self, tmp_path):
        key = _key()
        blob = b"identical payload bytes"
        path = _store_raw_entry(tmp_path, key, blob)
        sanitizer = CacheSanitizer(tmp_path)
        sanitizer.lock_acquired(path.stem)
        sanitizer.check_install(path, key, hashlib.sha256(blob).hexdigest())
        assert sanitizer.violations == []

    def test_foreign_key_clobber_is_lost_update(self, tmp_path):
        key = _key()
        path = _store_raw_entry(tmp_path, key, b"payload")
        other = PlacedKey(
            family="test-family",
            serial=2,
            w_data=8,
            w_coeff=8,
            anchor=(0, 0),
            seed=0,
            temperature_c=25.0,
            vdd=1.0,
            aging_years=0.0,
        )
        sanitizer = CacheSanitizer(tmp_path)
        sanitizer.lock_acquired(path.stem)
        sanitizer.check_install(path, other, "0" * 64)
        (violation,) = sanitizer.violations
        assert violation.kind == "lost-update"
        assert "different" in violation.detail

    def test_torn_entry_on_postinstall_mismatch(self, tmp_path):
        key = _key()
        path = _store_raw_entry(tmp_path, key, b"what actually landed")
        sanitizer = CacheSanitizer(tmp_path)
        sanitizer.verify_install(path, hashlib.sha256(b"what we wrote").hexdigest())
        (violation,) = sanitizer.violations
        assert violation.kind == "torn-entry"

    def test_missing_entry_after_install_is_torn(self, tmp_path):
        sanitizer = CacheSanitizer(tmp_path)
        sanitizer.verify_install(tmp_path / "gone.pkl", "0" * 64)
        (violation,) = sanitizer.violations
        assert violation.kind == "torn-entry"
        assert "unreadable" in violation.detail

    def test_violations_are_journalled_across_processes(self, tmp_path):
        sanitizer = CacheSanitizer(tmp_path)
        sanitizer.check_install(tmp_path / "abc.pkl", _key(), "0" * 64)
        records = read_journal(tmp_path)
        assert len(records) == 1
        assert records[0]["kind"] == "unlocked-install"
        assert records[0]["pid"] == os.getpid()

    def test_torn_journal_line_surfaces(self, tmp_path):
        path = journal_path(tmp_path)
        path.parent.mkdir(parents=True)
        good = json.dumps(SanitizerViolation("torn-entry", "d", "x", 1).as_dict())
        path.write_text(good + "\n" + '{"kind": "torn-en')
        kinds = [r["kind"] for r in read_journal(tmp_path)]
        assert kinds == ["torn-entry", "torn-journal-line"]


# ----------------------------------------------------------------------
# Multi-process stress + bit-transparency


def _stress_worker(args):
    """One participant process: hammer shared keys through one cache dir.

    Module-level (not a closure) so it ships to the pool fork-safely —
    the discipline DT008 enforces on the library itself.
    """
    directory, serial, keys, repeats = args
    os.environ["REPRO_SANITIZE"] = "1"
    device = make_device(serial=serial, family=FAMILY)
    cache = PlacedDesignCache(directory)
    digests = []
    for _ in range(repeats):
        for w_data, w_coeff, anchor, seed in keys:
            placed = cache.get_or_place(device, w_data, w_coeff, anchor, seed)
            digests.append(
                hashlib.sha256(
                    placed.node_delay.tobytes() + placed.edge_delay.tobytes()
                ).hexdigest()
            )
    stats = cache.stats()
    return digests, stats.corruptions, stats.sanitizer_violations


@pytest.mark.slow
def test_multiprocess_stress_no_lost_updates(tmp_path):
    """N concurrent processes share one cache: no corruption, no races.

    Every process opens its own ``PlacedDesignCache`` on the same
    directory and races the others through an identical key set (cold
    start: nothing pre-seeded, so first-writers genuinely collide on the
    advisory locks).  The sanitizer must observe zero violations, the
    corruption counter must stay zero everywhere, and all processes must
    see bit-identical placements.
    """
    directory = tmp_path / "shared-cache"
    keys = [
        (6, 4, (0, 0), 0),
        (6, 4, (2, 2), 0),
        (5, 5, (1, 1), 7),
    ]
    n_procs = 4
    jobs = [(str(directory), 1234, tuple(keys), 2) for _ in range(n_procs)]
    with ProcessPoolExecutor(max_workers=n_procs) as pool:
        results = list(pool.map(_stress_worker, jobs))

    reference_digests = results[0][0]
    for digests, corruptions, violations in results:
        assert digests == reference_digests, "processes disagree on placed bytes"
        assert corruptions == 0
        assert violations == 0
    # The shared journal aggregates every process: it must be empty.
    assert read_journal(directory) == []
    # Exactly one entry per distinct key survived the race.
    assert len(list(directory.glob("*.pkl"))) == len(keys)


def _run_reference_sweep(device, directory):
    cfg = CharacterizationConfig(
        freqs_mhz=(280.0, 320.0),
        n_samples=24,
        multiplicands=tuple(range(6)),
        n_locations=2,
        segment_chunk=3,
    )
    cache = PlacedDesignCache(directory)
    return characterize_multiplier(device, 6, 4, cfg, seed=9, jobs=1, cache=cache)


@pytest.mark.slow
def test_sweep_bit_identical_with_sanitizer_on_and_off(
    monkeypatch, tmp_path, device
):
    """REPRO_SANITIZE observes only: grids are byte-equal on vs off."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    off = _run_reference_sweep(device, tmp_path / "cache-off")
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    on = _run_reference_sweep(device, tmp_path / "cache-on")
    assert np.array_equal(off.freqs_mhz, on.freqs_mhz)
    for name in ("variance", "mean", "error_rate"):
        grid_off, grid_on = getattr(off, name), getattr(on, name)
        assert np.array_equal(grid_off, grid_on, equal_nan=True)
        assert grid_off.tobytes() == grid_on.tobytes()
    assert read_journal(tmp_path / "cache-on") == []
