"""Tests for repro.timing.simulator — the transition-aware settle model."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.netlist.core import Netlist, bits_from_ints
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.timing.simulator import simulate_transitions


def _xor_chain(n_gates: int):
    nl = Netlist()
    a = nl.add_input_bus("a", 1)
    b = nl.add_input_bus("b", 1)
    node = nl.XOR(a[0], b[0])
    for _ in range(n_gates - 1):
        node = nl.XOR(node, b[0])
    nl.set_output_bus("o", [node])
    return nl.compile()


def _uniform(c, lut=1.0, edge=0.0):
    nd = np.where(c.lut_mask, lut, 0.0)
    ed = np.where(c.lut_mask[:, None], edge, 0.0) * np.ones((1, 4))
    return nd, ed


class TestFunctionalValues:
    def test_values_match_evaluate(self):
        c = unsigned_array_multiplier(5, 5).compile()
        rng = np.random.default_rng(0)
        a = rng.integers(0, 32, 50)
        b = rng.integers(0, 32, 50)
        ins = {"a": bits_from_ints(a, 5), "b": bits_from_ints(b, 5)}
        nd, ed = _uniform(c)
        res = simulate_transitions(c, ins, nd, ed)
        ref = c.evaluate(ins)["p"]
        assert np.array_equal(res.output_values("p"), ref)


class TestSettleSemantics:
    def test_unchanged_output_settles_at_zero(self):
        c = _xor_chain(4)
        ins = {
            "a": bits_from_ints(np.array([0, 0]), 1),
            "b": bits_from_ints(np.array([0, 0]), 1),
        }
        nd, ed = _uniform(c)
        res = simulate_transitions(c, ins, nd, ed)
        assert res.output_settle("o")[0, 0] == 0.0

    def test_changed_output_settles_at_path_delay(self):
        c = _xor_chain(4)
        ins = {
            "a": bits_from_ints(np.array([0, 1]), 1),
            "b": bits_from_ints(np.array([0, 0]), 1),
        }
        nd, ed = _uniform(c, lut=1.0)
        res = simulate_transitions(c, ins, nd, ed)
        # a toggles: the change ripples through all 4 XOR gates.
        assert res.output_settle("o")[0, 0] == pytest.approx(4.0)

    def test_short_path_settles_early(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        b = nl.add_input_bus("b", 1)
        deep = nl.NOT(nl.NOT(nl.NOT(a[0])))
        nl.set_output_bus("deep", [deep])
        nl.set_output_bus("shallow", [nl.NOT(b[0])])
        c = nl.compile()
        ins = {
            "a": bits_from_ints(np.array([0, 1]), 1),
            "b": bits_from_ints(np.array([0, 1]), 1),
        }
        nd, ed = _uniform(c, lut=1.0)
        res = simulate_transitions(c, ins, nd, ed)
        assert res.output_settle("shallow")[0, 0] == pytest.approx(1.0)
        assert res.output_settle("deep")[0, 0] == pytest.approx(3.0)

    def test_edge_delay_included(self):
        c = _xor_chain(2)
        ins = {
            "a": bits_from_ints(np.array([0, 1]), 1),
            "b": bits_from_ints(np.array([0, 0]), 1),
        }
        nd, ed = _uniform(c, lut=1.0, edge=0.5)
        res = simulate_transitions(c, ins, nd, ed)
        assert res.output_settle("o")[0, 0] == pytest.approx(2 * 1.5)

    def test_settle_nonnegative_and_bounded_by_sta(self):
        from repro.timing.sta import static_timing

        c = unsigned_array_multiplier(6, 6).compile()
        rng = np.random.default_rng(1)
        a = rng.integers(0, 64, 200)
        b = rng.integers(0, 64, 200)
        ins = {"a": bits_from_ints(a, 6), "b": bits_from_ints(b, 6)}
        nd, ed = _uniform(c, lut=0.2, edge=0.05)
        res = simulate_transitions(c, ins, nd, ed)
        sta = static_timing(c, nd, ed)
        settle = res.output_settle("p")
        assert settle.min() >= 0.0
        assert settle.max() <= sta.critical_path_ns + 1e-9

    def test_benign_multiplicand_settles_earlier(self):
        """Paper Fig. 5: few-'1'-bit multiplicands excite shorter paths."""
        c = unsigned_array_multiplier(8, 8).compile()
        rng = np.random.default_rng(2)
        a = rng.integers(0, 256, 400)
        nd, ed = _uniform(c, lut=0.2, edge=0.05)
        worst = {}
        for m in (2, 255):
            ins = {
                "a": bits_from_ints(a, 8),
                "b": bits_from_ints(np.full_like(a, m), 8),
            }
            res = simulate_transitions(c, ins, nd, ed)
            worst[m] = float(res.output_settle("p").max())
        assert worst[2] < worst[255]


class TestValidation:
    def test_stream_too_short_rejected(self):
        c = _xor_chain(1)
        nd, ed = _uniform(c)
        with pytest.raises(TimingError):
            simulate_transitions(
                c,
                {"a": bits_from_ints([0], 1), "b": bits_from_ints([0], 1)},
                nd,
                ed,
            )

    def test_length_mismatch_rejected(self):
        c = _xor_chain(1)
        nd, ed = _uniform(c)
        with pytest.raises(TimingError):
            simulate_transitions(
                c,
                {
                    "a": bits_from_ints([0, 1], 1),
                    "b": bits_from_ints([0, 1, 0], 1),
                },
                nd,
                ed,
            )

    def test_bad_delay_shapes_rejected(self):
        c = _xor_chain(1)
        with pytest.raises(TimingError):
            simulate_transitions(
                c,
                {
                    "a": bits_from_ints([0, 1], 1),
                    "b": bits_from_ints([0, 1], 1),
                },
                np.zeros(1),
                np.zeros((1, 4)),
            )
