"""Tests for capture_stream_batch — the vectorised frequency sweep.

The batch capture must be a pure reorganisation of the per-frequency
path: for every frequency, the captured words and late masks equal a
``capture_stream`` call with the same rng seed, bit for bit.
"""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.fabric.jitter import JitterModel
from repro.netlist.core import bits_from_ints
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.timing.capture import capture_stream, capture_stream_batch
from repro.timing.simulator import simulate_transitions

FREQS = (220.0, 280.0, 340.0, 420.0)


def _multiplier_timing(n_stream=300, seed=0):
    c = unsigned_array_multiplier(8, 8).compile()
    nd = np.where(c.lut_mask, 0.15, 0.0)
    ed = np.where(c.lut_mask[:, None], 0.05, 0.0) * np.ones((1, 4))
    rng = np.random.default_rng(seed)
    ins = {
        "a": bits_from_ints(rng.integers(0, 256, n_stream), 8),
        "b": bits_from_ints(rng.integers(0, 256, n_stream), 8),
    }
    return simulate_transitions(c, ins, nd, ed)


class TestBatchEquivalence:
    def test_bitwise_equal_to_serial_captures(self):
        t = _multiplier_timing()
        batch = capture_stream_batch(t, "p", FREQS, setup_ns=0.2)
        for fi, f in enumerate(FREQS):
            single = capture_stream(t, "p", f, setup_ns=0.2)
            assert np.array_equal(batch.captured[fi], single.captured_ints())
            assert np.array_equal(batch.ideal, single.ideal_ints())
            assert batch.late_counts[fi] == int(single.late_mask.sum())

    def test_bitwise_equal_with_jitter(self):
        t = _multiplier_timing(seed=1)
        jitter = JitterModel(sigma_ns=0.05, bound_ns=0.15)
        rngs = [np.random.default_rng(100 + i) for i in range(len(FREQS))]
        batch = capture_stream_batch(t, "p", FREQS, jitter=jitter, rngs=rngs)
        for fi, f in enumerate(FREQS):
            single = capture_stream(
                t, "p", f, jitter=jitter, rng=np.random.default_rng(100 + fi)
            )
            assert np.array_equal(batch.captured[fi], single.captured_ints())

    def test_errors_shape_and_content(self):
        t = _multiplier_timing()
        batch = capture_stream_batch(t, "p", FREQS)
        errors = batch.errors()
        assert errors.shape == (len(FREQS), t.n_transitions)
        for fi, f in enumerate(FREQS):
            single = capture_stream(t, "p", f)
            expected = single.captured_ints() - single.ideal_ints()
            assert np.array_equal(errors[fi], expected)

    def test_monotone_errors_in_frequency(self):
        """More capture failures as the clock rises (paper Sec. III-C)."""
        t = _multiplier_timing()
        batch = capture_stream_batch(t, "p", FREQS)
        assert list(batch.late_counts) == sorted(batch.late_counts)


class TestBatchValidation:
    def test_jitter_requires_rngs(self):
        t = _multiplier_timing()
        with pytest.raises(TimingError):
            capture_stream_batch(
                t, "p", FREQS, jitter=JitterModel(sigma_ns=0.1, bound_ns=0.3)
            )

    def test_rng_count_must_match(self):
        t = _multiplier_timing()
        jitter = JitterModel(sigma_ns=0.1, bound_ns=0.3)
        with pytest.raises(TimingError):
            capture_stream_batch(
                t, "p", FREQS, jitter=jitter, rngs=[np.random.default_rng(0)]
            )

    def test_empty_frequency_list_rejected(self):
        t = _multiplier_timing()
        with pytest.raises(TimingError):
            capture_stream_batch(t, "p", ())

    def test_unknown_bus_rejected(self):
        t = _multiplier_timing()
        with pytest.raises(TimingError):
            capture_stream_batch(t, "nope", FREQS)
