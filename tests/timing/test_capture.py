"""Tests for repro.timing.capture — the over-clocked register model."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.fabric.jitter import JitterModel
from repro.netlist.core import Netlist, bits_from_ints
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.timing.capture import capture_stream
from repro.timing.simulator import simulate_transitions


def _chain_timing(n_gates=4, lut=1.0, stream=None):
    nl = Netlist()
    a = nl.add_input_bus("a", 1)
    node = a[0]
    for _ in range(n_gates):
        node = nl.NOT(node)
    nl.set_output_bus("o", [node])
    c = nl.compile()
    nd = np.where(c.lut_mask, lut, 0.0)
    ed = np.zeros((c.n_nodes, 4))
    if stream is None:
        stream = np.array([0, 1, 0, 1, 0, 1])
    ins = {"a": bits_from_ints(stream, 1)}
    return simulate_transitions(c, ins, nd, ed)


class TestCaptureSemantics:
    def test_slow_clock_captures_everything(self):
        t = _chain_timing()  # path = 4 ns
        cap = capture_stream(t, "o", freq_mhz=100.0)  # 10 ns period
        assert cap.error_rate() == 0.0
        assert np.array_equal(cap.captured_bits, cap.ideal_bits)

    def test_fast_clock_holds_stale_value(self):
        t = _chain_timing()  # path = 4 ns
        cap = capture_stream(t, "o", freq_mhz=500.0)  # 2 ns < 4 ns
        # Every toggling cycle misses: register holds the previous value.
        assert cap.error_rate() == 1.0
        assert np.array_equal(cap.captured_bits, 1 - cap.ideal_bits)

    def test_boundary_exact_period(self):
        t = _chain_timing()  # 4 ns settle
        cap = capture_stream(t, "o", freq_mhz=250.0)  # exactly 4 ns
        assert cap.error_rate() == 0.0

    def test_setup_margin_tips_boundary(self):
        t = _chain_timing()
        cap = capture_stream(t, "o", freq_mhz=250.0, setup_ns=0.1)
        assert cap.error_rate() == 1.0

    def test_errors_cumulative_in_frequency(self):
        """Paper Sec. III-C: more errors as the clock rises."""
        c = unsigned_array_multiplier(8, 8).compile()
        nd = np.where(c.lut_mask, 0.15, 0.0)
        ed = np.where(c.lut_mask[:, None], 0.05, 0.0) * np.ones((1, 4))
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 600)
        b = rng.integers(0, 256, 600)
        t = simulate_transitions(
            c, {"a": bits_from_ints(a, 8), "b": bits_from_ints(b, 8)}, nd, ed
        )
        rates = [
            capture_stream(t, "p", f).error_rate() for f in (150, 250, 350, 450, 600)
        ]
        assert all(x <= y + 1e-12 for x, y in zip(rates, rates[1:]))
        assert rates[0] == 0.0
        assert rates[-1] > 0.3

    def test_msbs_fail_first(self):
        c = unsigned_array_multiplier(8, 8).compile()
        nd = np.where(c.lut_mask, 0.15, 0.0)
        ed = np.where(c.lut_mask[:, None], 0.05, 0.0) * np.ones((1, 4))
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, 600)
        b = rng.integers(0, 256, 600)
        t = simulate_transitions(
            c, {"a": bits_from_ints(a, 8), "b": bits_from_ints(b, 8)}, nd, ed
        )
        # Pick a frequency with a moderate error rate.
        cap = capture_stream(t, "p", 330.0)
        ber = cap.bit_error_rate()
        assert 0 < cap.error_rate() < 1
        assert ber[-2] > ber[1]


class TestJitter:
    def test_jitter_requires_rng(self):
        t = _chain_timing()
        with pytest.raises(TimingError):
            capture_stream(t, "o", 250.0, jitter=JitterModel(sigma_ns=0.1, bound_ns=0.3))

    def test_jitter_perturbs_boundary_cases(self):
        t = _chain_timing(stream=np.array([0, 1] * 300))
        j = JitterModel(sigma_ns=0.05, bound_ns=0.2)
        cap = capture_stream(t, "o", 250.0, jitter=j, rng=np.random.default_rng(0))
        # At the exact boundary, jitter makes some cycles fail.
        assert 0 < cap.error_rate() < 1

    def test_run_to_run_variation(self):
        """Paper Sec. III-C attributes repeat-run variation to jitter."""
        t = _chain_timing(stream=np.array([0, 1] * 300))
        j = JitterModel(sigma_ns=0.05, bound_ns=0.2)
        r1 = capture_stream(t, "o", 250.0, jitter=j, rng=np.random.default_rng(1)).error_rate()
        r2 = capture_stream(t, "o", 250.0, jitter=j, rng=np.random.default_rng(2)).error_rate()
        assert r1 != r2


class TestAccessors:
    def test_errors_signed(self):
        c = unsigned_array_multiplier(4, 4).compile()
        nd = np.where(c.lut_mask, 1.0, 0.0)
        ed = np.zeros((c.n_nodes, 4))
        rng = np.random.default_rng(3)
        a = rng.integers(0, 16, 100)
        b = rng.integers(0, 16, 100)
        t = simulate_transitions(
            c, {"a": bits_from_ints(a, 4), "b": bits_from_ints(b, 4)}, nd, ed
        )
        cap = capture_stream(t, "p", 200.0)
        err = cap.errors()
        assert np.array_equal(err, cap.captured_ints() - cap.ideal_ints())

    def test_unknown_bus_rejected(self):
        t = _chain_timing()
        with pytest.raises(TimingError):
            capture_stream(t, "nope", 100.0)
