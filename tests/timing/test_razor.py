"""Tests for repro.timing.razor — the ref-[4] baseline."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.netlist.core import Netlist, bits_from_ints
from repro.timing.capture import capture_stream
from repro.timing.razor import (
    RazorConfig,
    razor_execute,
    razor_optimal_frequency,
)
from repro.timing.simulator import simulate_transitions


def _capture(freq, n_gates=4, stream=None):
    nl = Netlist()
    a = nl.add_input_bus("a", 1)
    node = a[0]
    for _ in range(n_gates):
        node = nl.NOT(node)
    nl.set_output_bus("o", [node])
    c = nl.compile()
    nd = np.where(c.lut_mask, 1.0, 0.0)
    ed = np.zeros((c.n_nodes, 4))
    if stream is None:
        stream = np.array([0, 1] * 50)
    t = simulate_transitions(c, {"a": bits_from_ints(stream, 1)}, nd, ed)
    return capture_stream(t, "o", freq)


class TestRazorExecute:
    def test_error_free_run_has_no_replays(self):
        r = razor_execute(_capture(100.0))  # 10 ns >> 4 ns path
        assert r.n_replays == 0
        assert r.effective_throughput_mhz == pytest.approx(100.0)

    def test_corrected_output_always_ideal(self):
        cap = _capture(500.0)  # every toggle misses
        r = razor_execute(cap)
        assert np.array_equal(r.corrected, cap.ideal_ints())
        assert r.n_replays == cap.n_cycles  # all cycles replay

    def test_replays_cost_throughput(self):
        r = razor_execute(_capture(500.0))
        # 100% error rate with 1-cycle replay halves the throughput.
        assert r.effective_throughput_mhz == pytest.approx(250.0)

    def test_replay_cycles_scale_penalty(self):
        cap = _capture(500.0)
        r2 = razor_execute(cap, RazorConfig(replay_cycles=2))
        assert r2.effective_throughput_mhz == pytest.approx(500.0 / 3)

    def test_protected_area_overhead(self):
        r = razor_execute(_capture(100.0), RazorConfig(area_overhead_fraction=0.5))
        assert r.protected_area(200) == pytest.approx(300.0)

    def test_config_validation(self):
        with pytest.raises(TimingError):
            RazorConfig(replay_cycles=0)
        with pytest.raises(TimingError):
            RazorConfig(area_overhead_fraction=-0.1)


class TestOptimalFrequency:
    def test_picks_knee_of_curve(self):
        freqs = np.array([200.0, 250.0, 300.0, 350.0])
        rates = np.array([0.0, 0.0, 0.5, 1.0])
        best_f, best_eff = razor_optimal_frequency(freqs, rates)
        # 300 MHz: 300/1.5 = 200; 350: 175; 250 error-free: 250 wins.
        assert best_f == 250.0
        assert best_eff == pytest.approx(250.0)

    def test_overclocking_can_still_pay(self):
        freqs = np.array([200.0, 300.0])
        rates = np.array([0.0, 0.1])
        best_f, best_eff = razor_optimal_frequency(freqs, rates)
        assert best_f == 300.0
        assert best_eff == pytest.approx(300.0 / 1.1)

    def test_validation(self):
        with pytest.raises(TimingError):
            razor_optimal_frequency(np.array([1.0]), np.array([0.1, 0.2]))
        with pytest.raises(TimingError):
            razor_optimal_frequency(np.array([1.0]), np.array([1.5]))
