"""Cross-cutting property tests of the timing stack (hypothesis).

These pin the invariants everything downstream relies on:

* capture error rate is monotone non-decreasing in clock frequency;
* settle times never exceed the STA bound, for any netlist and stimulus;
* the functional values of the timing simulator always match pure
  evaluation;
* jitter-free capture at (or above) the STA period is error-free.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.core import Netlist, bits_from_ints
from repro.timing.capture import capture_stream
from repro.timing.simulator import simulate_transitions
from repro.timing.sta import static_timing


@st.composite
def random_netlist(draw):
    """A random small combinational netlist with one input bus."""
    width = draw(st.integers(2, 5))
    n_gates = draw(st.integers(1, 24))
    nl = Netlist("random")
    nodes = list(nl.add_input_bus("a", width))
    ops = ["AND", "OR", "XOR", "NAND", "XNOR"]
    for i in range(n_gates):
        op = ops[draw(st.integers(0, len(ops) - 1))]
        x = nodes[draw(st.integers(0, len(nodes) - 1))]
        y = nodes[draw(st.integers(0, len(nodes) - 1))]
        nodes.append(getattr(nl, op)(x, y))
    out_bits = [
        nodes[draw(st.integers(0, len(nodes) - 1))]
        for _ in range(draw(st.integers(1, 4)))
    ]
    nl.set_output_bus("o", out_bits)
    return nl.compile(), width


@st.composite
def netlist_with_stimulus(draw):
    compiled, width = draw(random_netlist())
    n = draw(st.integers(2, 40))
    seed = draw(st.integers(0, 2**20))
    stim = np.random.default_rng(seed).integers(0, 1 << width, n)
    return compiled, {"a": bits_from_ints(stim, width)}


def _delays(compiled, lut=0.3, edge=0.1):
    nd = np.where(compiled.lut_mask, lut, 0.0)
    ed = np.where(compiled.lut_mask[:, None], edge, 0.0) * np.ones((1, 4))
    return nd, ed


class TestTimingProperties:
    @given(netlist_with_stimulus())
    @settings(max_examples=40, deadline=None)
    def test_functional_values_match_evaluate(self, case):
        compiled, ins = case
        nd, ed = _delays(compiled)
        res = simulate_transitions(compiled, ins, nd, ed)
        ref = compiled.evaluate(ins)["o"]
        assert np.array_equal(res.output_values("o"), ref)

    @given(netlist_with_stimulus())
    @settings(max_examples=40, deadline=None)
    def test_settle_bounded_by_sta(self, case):
        compiled, ins = case
        nd, ed = _delays(compiled)
        res = simulate_transitions(compiled, ins, nd, ed)
        sta = static_timing(compiled, nd, ed)
        # settle is float32; allow its rounding relative to the f64 STA
        assert res.output_settle("o").max() <= sta.critical_path_ns * (1 + 1e-6) + 1e-9
        assert res.output_settle("o").min() >= 0.0

    @given(netlist_with_stimulus())
    @settings(max_examples=30, deadline=None)
    def test_error_rate_monotone_in_frequency(self, case):
        compiled, ins = case
        nd, ed = _delays(compiled)
        res = simulate_transitions(compiled, ins, nd, ed)
        rates = [
            capture_stream(res, "o", f).error_rate()
            for f in (50.0, 150.0, 400.0, 1000.0, 4000.0)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))

    @given(netlist_with_stimulus())
    @settings(max_examples=30, deadline=None)
    def test_sta_period_is_always_safe(self, case):
        compiled, ins = case
        nd, ed = _delays(compiled)
        res = simulate_transitions(compiled, ins, nd, ed)
        sta = static_timing(compiled, nd, ed)
        # tiny margin absorbs the simulator's float32 rounding
        freq = 1000.0 / (max(sta.critical_path_ns, 1e-3) * (1 + 1e-5))
        cap = capture_stream(res, "o", freq)
        assert cap.error_rate() == 0.0

    @given(netlist_with_stimulus(), st.integers(0, 2**20))
    @settings(max_examples=20, deadline=None)
    def test_capture_deterministic_without_jitter(self, case, _seed):
        compiled, ins = case
        nd, ed = _delays(compiled)
        res = simulate_transitions(compiled, ins, nd, ed)
        a = capture_stream(res, "o", 500.0)
        b = capture_stream(res, "o", 500.0)
        assert np.array_equal(a.captured_bits, b.captured_bits)
