"""Tests for repro.timing.sta."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.netlist.core import Netlist
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.timing.sta import arrival_times, static_timing


def _chain(n_gates: int):
    """A NOT-chain netlist: arrival grows linearly with depth."""
    nl = Netlist()
    a = nl.add_input_bus("a", 1)
    node = a[0]
    for _ in range(n_gates):
        node = nl.NOT(node)
    nl.set_output_bus("o", [node])
    return nl.compile()


def _uniform_delays(c, lut=1.0, edge=0.5):
    node_delay = np.where(c.lut_mask, lut, 0.0)
    edge_delay = np.where(c.lut_mask[:, None], edge, 0.0) * np.ones((1, 4))
    return node_delay, edge_delay


class TestArrival:
    def test_chain_arrival(self):
        c = _chain(5)
        nd, ed = _uniform_delays(c)
        arr = arrival_times(c, nd, ed)
        out = c.output_buses["o"][0]
        assert arr[out] == pytest.approx(5 * 1.5)

    def test_inputs_arrive_at_zero(self):
        c = _chain(3)
        nd, ed = _uniform_delays(c)
        arr = arrival_times(c, nd, ed)
        assert arr[c.input_buses["a"][0]] == 0.0

    def test_max_over_fanins(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        slow = nl.NOT(nl.NOT(a[0]))  # depth 2
        fast = a[1]
        out = nl.AND(slow, fast)
        nl.set_output_bus("o", [out])
        c = nl.compile()
        nd, ed = _uniform_delays(c, lut=1.0, edge=0.0)
        arr = arrival_times(c, nd, ed)
        assert arr[c.output_buses["o"][0]] == pytest.approx(3.0)

    def test_shape_validation(self):
        c = _chain(2)
        with pytest.raises(TimingError):
            arrival_times(c, np.zeros(c.n_nodes + 1), np.zeros((c.n_nodes, 4)))
        with pytest.raises(TimingError):
            arrival_times(c, np.zeros(c.n_nodes), np.zeros((c.n_nodes, 3)))


class TestStaticTiming:
    def test_fmax_from_critical_path(self):
        c = _chain(10)
        nd, ed = _uniform_delays(c, lut=0.1, edge=0.0)
        res = static_timing(c, nd, ed, setup_ns=0.0)
        assert res.critical_path_ns == pytest.approx(1.0)
        assert res.fmax_mhz == pytest.approx(1000.0)

    def test_setup_time_reduces_fmax(self):
        c = _chain(10)
        nd, ed = _uniform_delays(c, lut=0.1, edge=0.0)
        with_setup = static_timing(c, nd, ed, setup_ns=0.5)
        without = static_timing(c, nd, ed, setup_ns=0.0)
        assert with_setup.fmax_mhz < without.fmax_mhz
        assert with_setup.min_period_ns == pytest.approx(1.5)

    def test_negative_setup_rejected(self):
        c = _chain(1)
        nd, ed = _uniform_delays(c)
        with pytest.raises(TimingError):
            static_timing(c, nd, ed, setup_ns=-0.1)

    def test_multiplier_msbs_slowest(self):
        """Per-output-bit Fmax: MSbs must be slowest (paper Sec. III-C)."""
        c = unsigned_array_multiplier(8, 8).compile()
        nd, ed = _uniform_delays(c, lut=0.1, edge=0.05)
        res = static_timing(c, nd, ed, setup_ns=0.0)
        per_bit = res.output_fmax_mhz("p")
        # Low product bits strictly faster than the top informative bit.
        assert per_bit[1] > per_bit[-2]

    def test_output_arrival_recorded_per_bus(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        nl.set_output_bus("x", [nl.NOT(a[0])])
        nl.set_output_bus("y", [nl.NOT(nl.NOT(a[1]))])
        c = nl.compile()
        nd, ed = _uniform_delays(c, lut=1.0, edge=0.0)
        res = static_timing(c, nd, ed)
        assert res.output_arrival["x"][0] == pytest.approx(1.0)
        assert res.output_arrival["y"][0] == pytest.approx(2.0)
        assert res.critical_path_ns == pytest.approx(2.0)
