"""Tests for repro.synthesis.placer."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.synthesis.placer import place_netlist

NL = unsigned_array_multiplier(6, 6).compile()


class TestPlacement:
    def test_all_nodes_inside_region(self, device):
        p = place_netlist(NL, device, anchor=(4, 6), seed=0)
        w, h = p.region
        assert p.xs.min() >= 4 and p.xs.max() < 4 + w
        assert p.ys.min() >= 6 and p.ys.max() < 6 + h

    def test_no_le_shared(self, device):
        p = place_netlist(NL, device, anchor=(0, 0), seed=0)
        coords = set(zip(p.xs.tolist(), p.ys.tolist()))
        assert len(coords) == NL.n_nodes

    def test_deterministic(self, device):
        a = place_netlist(NL, device, anchor=(0, 0), seed=5)
        b = place_netlist(NL, device, anchor=(0, 0), seed=5)
        assert np.array_equal(a.xs, b.xs) and np.array_equal(a.ys, b.ys)

    def test_seed_changes_layout(self, device):
        a = place_netlist(NL, device, anchor=(0, 0), seed=5)
        b = place_netlist(NL, device, anchor=(0, 0), seed=6)
        assert not (np.array_equal(a.xs, b.xs) and np.array_equal(a.ys, b.ys))

    def test_out_of_bounds_rejected(self, device):
        with pytest.raises(PlacementError):
            place_netlist(NL, device, anchor=(device.cols - 2, 0), seed=0)

    def test_bad_utilization_rejected(self, device):
        with pytest.raises(PlacementError):
            place_netlist(NL, device, utilization=0.01)

    def test_lower_utilization_spreads(self, device):
        tight = place_netlist(NL, device, utilization=0.9)
        loose = place_netlist(NL, device, utilization=0.2)
        assert loose.region[0] > tight.region[0]


class TestDerivedQuantities:
    def test_edge_distances_nonnegative(self, device):
        p = place_netlist(NL, device)
        d = p.manhattan_edge_distances()
        assert d.shape == (NL.n_nodes, 4)
        assert d.min() >= 0

    def test_padded_fanins_zero_distance(self, device):
        p = place_netlist(NL, device)
        d = p.manhattan_edge_distances()
        arity = NL.arity
        for k in range(4):
            assert np.all(d[arity <= k, k] == 0.0)

    def test_fanout_counts(self, device):
        p = place_netlist(NL, device)
        f = p.fanout_counts()
        assert f.min() >= 1
        # Input bits of an array multiplier drive many partial products.
        a0 = NL.input_buses["a"][0]
        assert f[a0] >= 4

    def test_connected_nodes_are_local(self, device):
        """The serpentine level order keeps fanin distances modest."""
        p = place_netlist(NL, device)
        d = p.manhattan_edge_distances()
        arity = NL.arity
        real = d[np.arange(NL.n_nodes)[arity > 0], 0]
        assert np.median(real) <= p.region[0]
