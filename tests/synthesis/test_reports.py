"""Tests for repro.synthesis.timing_report and area_report."""

import pytest

from repro.errors import ConfigError
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.synthesis.area_report import area_report
from repro.synthesis.placer import place_netlist
from repro.synthesis.timing_report import tool_timing_report

NL8 = unsigned_array_multiplier(8, 8).compile()
NL4 = unsigned_array_multiplier(9, 4).compile()


class TestToolTimingReport:
    def test_tool_below_device_truth(self, flow):
        """Fig. 1's premise: fA is well below the device's real bound."""
        placed = flow.run(NL8, anchor=(0, 0), seed=0)
        assert placed.tool_report.fmax_mhz < placed.device_sta().fmax_mhz

    def test_pessimism_factor_plausible(self, flow):
        placed = flow.run(NL8, anchor=(0, 0), seed=0)
        ratio = placed.device_sta().fmax_mhz / placed.tool_report.fmax_mhz
        assert 1.2 < ratio < 2.5

    def test_tool_report_location_independent(self, device):
        """The tool models the family, not the die: same report anywhere."""
        a = tool_timing_report(place_netlist(NL8, device, anchor=(0, 0), seed=0))
        b = tool_timing_report(place_netlist(NL8, device, anchor=(30, 30), seed=0))
        assert a.fmax_mhz == pytest.approx(b.fmax_mhz, rel=0.02)

    def test_smaller_multiplier_faster(self, device):
        big = tool_timing_report(place_netlist(NL8, device, seed=0))
        small = tool_timing_report(place_netlist(NL4, device, seed=0))
        assert small.fmax_mhz > big.fmax_mhz


class TestAreaReport:
    def test_noise_free_matches_structure(self):
        r = area_report(NL8, seed=0, noise_sigma=0.0)
        assert r.logic_elements == NL8.n_luts
        assert r.optimisation_delta == 0

    def test_noise_scatters_reports(self):
        rs = {area_report(NL8, seed=s).logic_elements for s in range(10)}
        assert len(rs) > 1

    def test_scatter_is_small(self):
        rs = [area_report(NL8, seed=s).logic_elements for s in range(30)]
        rel = [abs(r - NL8.n_luts) / NL8.n_luts for r in rs]
        assert max(rel) < 0.2

    def test_deterministic_per_seed(self):
        assert (
            area_report(NL8, seed=7).logic_elements
            == area_report(NL8, seed=7).logic_elements
        )

    def test_at_least_one_le(self):
        r = area_report(NL4, seed=3, noise_sigma=2.0)  # extreme noise
        assert r.logic_elements >= 1

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError):
            area_report(NL8, noise_sigma=-1.0)
