"""Tests for repro.synthesis.flow — the end-to-end mini synthesis flow."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.fabric import OperatingConditions
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.synthesis import SynthesisFlow

NL = unsigned_array_multiplier(8, 8).compile()


class TestRun:
    def test_annotations_cover_luts(self, placed_mult8):
        lut_mask = placed_mult8.netlist.lut_mask
        assert np.all(placed_mult8.node_delay[lut_mask] > 0)
        assert np.all(placed_mult8.node_delay[~lut_mask] == 0)
        assert np.all(placed_mult8.edge_delay[~lut_mask] == 0)

    def test_accepts_uncompiled_netlist(self, flow):
        placed = flow.run(unsigned_array_multiplier(4, 4), seed=0)
        assert placed.netlist.n_luts > 0

    def test_location_changes_delays(self, flow):
        a = flow.run(NL, anchor=(0, 0), seed=0)
        b = flow.run(NL, anchor=(30, 30), seed=0)
        assert not np.allclose(a.node_delay, b.node_delay)

    def test_seed_changes_routing(self, flow):
        a = flow.run(NL, anchor=(0, 0), seed=0)
        b = flow.run(NL, anchor=(0, 0), seed=1)
        assert not np.allclose(a.edge_delay, b.edge_delay)

    def test_deterministic(self, flow):
        a = flow.run(NL, anchor=(0, 0), seed=0)
        b = flow.run(NL, anchor=(0, 0), seed=0)
        assert np.array_equal(a.node_delay, b.node_delay)
        assert np.array_equal(a.edge_delay, b.edge_delay)

    def test_different_devices_differ(self, device, other_device):
        a = SynthesisFlow(device).run(NL, seed=0)
        b = SynthesisFlow(other_device).run(NL, seed=0)
        assert not np.allclose(a.node_delay, b.node_delay)

    def test_conditions_slow_the_design(self, device):
        hot = device.with_conditions(OperatingConditions(temperature_c=85.0))
        cold = SynthesisFlow(device).run(NL, seed=0)
        hot_run = SynthesisFlow(hot).run(NL, seed=0)
        assert hot_run.device_sta().fmax_mhz < cold.device_sta().fmax_mhz


class TestAnchors:
    def test_requested_count(self, flow):
        anchors = flow.available_anchors(NL, 4)
        assert len(anchors) == 4
        assert len(set(anchors)) == 4

    def test_all_anchors_fit(self, flow):
        for anchor in flow.available_anchors(NL, 5):
            flow.run(NL, anchor=anchor, seed=0)  # must not raise

    def test_invalid_count_rejected(self, flow):
        with pytest.raises(PlacementError):
            flow.available_anchors(NL, 0)

    def test_oversized_design_rejected(self, device):
        giant = unsigned_array_multiplier(32, 32).compile()
        with pytest.raises(PlacementError):
            SynthesisFlow(device).available_anchors(giant, 2)
