"""Tests for repro.core.quantize — sign-magnitude fixed point."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.quantize import (
    dequantize_magnitudes,
    quantize_coefficients,
    quantize_data,
)
from repro.errors import DesignError


class TestCoefficients:
    def test_roundtrip_exact_grid_values(self):
        wl = 5
        vals = np.array([-0.5, 0.25, 0.0, 31 / 32, -31 / 32])
        q = quantize_coefficients(vals, wl)
        assert np.allclose(q.values, vals)

    def test_rounding_to_nearest(self):
        q = quantize_coefficients(np.array([0.26]), 2)  # grid step 0.25
        assert q.values[0] == pytest.approx(0.25)

    def test_saturation_at_one(self):
        q = quantize_coefficients(np.array([1.0, -1.0]), 4)
        assert q.magnitudes.tolist() == [15, 15]
        assert q.values[0] == pytest.approx(15 / 16)
        assert q.values[1] == pytest.approx(-15 / 16)

    def test_out_of_range_rejected(self):
        with pytest.raises(DesignError):
            quantize_coefficients(np.array([1.5]), 4)

    def test_zero_keeps_positive_sign(self):
        q = quantize_coefficients(np.array([-0.001]), 3)
        assert q.magnitudes[0] == 0
        assert q.signs[0] == 1

    def test_error_bounded_by_half_step_inside_range(self):
        rng = np.random.default_rng(0)
        vals = rng.uniform(-0.99, 0.99, 500)
        for wl in (3, 6, 9):
            # Saturation applies above the top grid point; inside the
            # representable range the error is at most half a step.
            top = ((1 << wl) - 1) / (1 << wl)
            inside = vals[np.abs(vals) <= top]
            q = quantize_coefficients(inside, wl)
            assert np.abs(q.values - inside).max() <= 2.0 ** (-wl) / 2 + 1e-12

    def test_saturation_error_bounded_by_step(self):
        q = quantize_coefficients(np.array([0.999]), 3)
        assert abs(q.values[0] - 0.999) <= 2.0**-3

    @given(
        st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=10),
    )
    def test_roundtrip_property(self, vals, wl):
        q = quantize_coefficients(np.asarray(vals), wl)
        recon = dequantize_magnitudes(q.magnitudes, q.signs, wl)
        assert np.allclose(recon, q.values)
        assert np.all(q.magnitudes < (1 << wl))
        assert np.all(q.magnitudes >= 0)

    def test_invalid_wordlength_rejected(self):
        with pytest.raises(DesignError):
            quantize_coefficients(np.array([0.5]), 0)


class TestData:
    def test_peak_scaling_preserves_values(self):
        x = np.array([[2.0, -4.0, 1.0]])
        q = quantize_data(x, 9)
        # The peak itself saturates to (2^wl - 1)/2^wl: error exactly one
        # step at the peak, at most half a step elsewhere.
        assert np.abs(q.values - x).max() <= 4.0 * 2.0**-9 + 1e-12

    def test_magnitudes_in_range(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 100)) * 3
        q = quantize_data(x, 9)
        assert q.magnitudes.max() < 512

    def test_zero_data(self):
        q = quantize_data(np.zeros((3, 4)), 8)
        assert np.all(q.values == 0)
        assert np.all(q.magnitudes == 0)

    def test_quantization_step_property(self):
        q = quantize_data(np.ones((2, 2)), 7)
        assert q.quantization_step == pytest.approx(2.0**-7)


class TestQuantizedMatrixValidation:
    def test_shape_mismatch_rejected(self):
        from repro.core.quantize import QuantizedMatrix

        with pytest.raises(DesignError):
            QuantizedMatrix(
                values=np.zeros(3),
                magnitudes=np.zeros(4, dtype=np.int64),
                signs=np.ones(3, dtype=np.int64),
                wordlength=4,
            )

    def test_magnitude_overflow_rejected(self):
        from repro.core.quantize import QuantizedMatrix

        with pytest.raises(DesignError):
            QuantizedMatrix(
                values=np.zeros(1),
                magnitudes=np.array([16]),
                signs=np.ones(1, dtype=np.int64),
                wordlength=4,
            )
