"""Tests for repro.core.klt — eqs. (1)-(4)."""

import numpy as np
import pytest

from repro.core.klt import fit_klt, fit_klt_deflation, klt_reference_design
from repro.datasets import low_rank_gaussian
from repro.errors import DesignError


def _data(p=6, k=3, n=300, seed=0, noise=0.02):
    return low_rank_gaussian(p, k, n, np.random.default_rng(seed), noise=noise)


class TestFitKLT:
    def test_orthonormal_columns(self):
        lam = fit_klt(_data(), 3)
        assert np.allclose(lam.T @ lam, np.eye(3), atol=1e-10)

    def test_energy_ordered(self):
        x = _data()
        lam = fit_klt(x, 3)
        energies = ((lam.T @ x) ** 2).sum(axis=1)
        assert np.all(np.diff(energies) <= 1e-9)

    def test_captures_low_rank_structure(self):
        x = _data(noise=0.001)
        lam = fit_klt(x, 3)
        resid = x - lam @ (lam.T @ x)
        assert (resid**2).mean() < 1e-4

    def test_k_equals_p_reconstructs_exactly(self):
        x = _data(p=4, k=4, noise=0.1)
        lam = fit_klt(x, 4)
        assert np.allclose(lam @ (lam.T @ x), x, atol=1e-8)

    def test_sign_convention_deterministic(self):
        lam1 = fit_klt(_data(), 3)
        lam2 = fit_klt(_data(), 3)
        assert np.array_equal(lam1, lam2)
        for j in range(3):
            assert lam1[np.argmax(np.abs(lam1[:, j])), j] > 0

    def test_invalid_k_rejected(self):
        with pytest.raises(DesignError):
            fit_klt(_data(), 0)
        with pytest.raises(DesignError):
            fit_klt(_data(), 7)

    def test_invalid_shape_rejected(self):
        with pytest.raises(DesignError):
            fit_klt(np.zeros(6), 2)


class TestDeflation:
    def test_matches_eigendecomposition_subspace(self):
        x = _data(noise=0.01)
        a = fit_klt(x, 3)
        b = fit_klt_deflation(x, 3)
        # Same subspace: projectors agree.
        pa = a @ a.T
        pb = b @ b.T
        assert np.allclose(pa, pb, atol=1e-3)

    def test_orthonormal(self):
        lam = fit_klt_deflation(_data(), 3)
        assert np.allclose(lam.T @ lam, np.eye(3), atol=1e-6)

    def test_deflated_residual_shrinks(self):
        x = _data()
        for k in (1, 2, 3):
            lam = fit_klt_deflation(x, k)
            resid = x - lam @ (lam.T @ x)
            if k == 1:
                prev = (resid**2).mean()
            else:
                cur = (resid**2).mean()
                assert cur < prev
                prev = cur


class TestReferenceDesign:
    def test_design_fields(self):
        x = _data()
        d = klt_reference_design(x, 3, wordlength=6, w_data=9, freq_mhz=310.0, area_le=400.0)
        assert d.method == "klt"
        assert d.wordlengths == (6, 6, 6)
        assert d.values.shape == (6, 3)
        assert d.area_le == 400.0

    def test_quantisation_error_decreases_with_wordlength(self):
        x = _data()
        lam = fit_klt(x, 3)
        errs = []
        for wl in (3, 5, 7, 9):
            d = klt_reference_design(x, 3, wl, 9, 310.0)
            errs.append(float(((d.values - lam) ** 2).mean()))
        assert errs == sorted(errs, reverse=True)
