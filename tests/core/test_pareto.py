"""Tests for repro.core.pareto — front extraction and Q-bin selection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pareto import pareto_front, select_q_bins
from repro.errors import OptimizationError

AREA = lambda t: t[0]  # noqa: E731
MSE = lambda t: t[1]  # noqa: E731


class TestParetoFront:
    def test_dominated_points_removed(self):
        pts = [(1.0, 1.0), (2.0, 2.0), (2.0, 0.5), (3.0, 0.4)]
        front = pareto_front(pts, AREA, MSE)
        assert (2.0, 2.0) not in front
        assert (1.0, 1.0) in front and (2.0, 0.5) in front and (3.0, 0.4) in front

    def test_sorted_by_area(self):
        pts = [(3.0, 0.1), (1.0, 0.9), (2.0, 0.5)]
        front = pareto_front(pts, AREA, MSE)
        assert [p[0] for p in front] == sorted(p[0] for p in front)

    def test_front_mse_strictly_decreasing(self):
        rng = np.random.default_rng(0)
        pts = list(zip(rng.uniform(0, 10, 100), rng.uniform(0, 1, 100)))
        front = pareto_front(pts, AREA, MSE)
        mses = [p[1] for p in front]
        assert all(a > b for a, b in zip(mses, mses[1:]))

    def test_empty_input(self):
        assert pareto_front([], AREA, MSE) == []

    def test_single_point(self):
        assert pareto_front([(1.0, 1.0)], AREA, MSE) == [(1.0, 1.0)]

    def test_nonfinite_rejected(self):
        with pytest.raises(OptimizationError):
            pareto_front([(1.0, float("nan"))], AREA, MSE)

    @given(
        st.lists(
            st.tuples(
                st.floats(0.1, 100.0),
                st.floats(0.0, 10.0),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_no_front_point_dominated(self, pts):
        front = pareto_front(pts, AREA, MSE)
        for f in front:
            for other in pts:
                dominates = (
                    other[0] <= f[0]
                    and other[1] <= f[1]
                    and (other[0] < f[0] or other[1] < f[1])
                )
                assert not dominates


class TestQBins:
    def test_at_most_q_returned(self):
        pts = [(float(i), 1.0 / (i + 1)) for i in range(20)]
        assert len(select_q_bins(pts, 5, MSE)) == 5

    def test_fewer_items_than_q(self):
        pts = [(1.0, 0.5), (2.0, 0.3)]
        assert len(select_q_bins(pts, 5, MSE)) == 2

    def test_diversity_across_mse_span(self):
        """Bins spread the survivors over the objective range."""
        pts = [(float(i), float(i)) for i in range(100)]
        chosen = select_q_bins(pts, 5, MSE)
        mses = sorted(p[1] for p in chosen)
        assert mses[0] < 20 and mses[-1] >= 79  # touches both ends

    def test_identical_mses_pick_q_items(self):
        pts = [(float(i), 0.5) for i in range(10)]
        assert len(select_q_bins(pts, 4, MSE)) == 4

    def test_padding_when_bins_sparse(self):
        # All MSEs cluster in one bin except one outlier: padding fills Q.
        pts = [(1.0, 0.1), (2.0, 0.11), (3.0, 0.12), (4.0, 10.0)]
        chosen = select_q_bins(pts, 4, MSE)
        assert len(chosen) == 4

    def test_invalid_q_rejected(self):
        with pytest.raises(OptimizationError):
            select_q_bins([(1.0, 1.0)], 0, MSE)

    def test_empty_input(self):
        assert select_q_bins([], 3, MSE) == []
