"""Tests for repro.core.optimizer — Algorithm 1."""

import numpy as np
import pytest

from repro.config import TableISettings
from repro.core.optimizer import OptimizerConfig, optimize_designs
from repro.datasets import low_rank_gaussian
from repro.errors import OptimizationError
from repro.models.area_model import AreaModel

SETTINGS = TableISettings(
    n_characterization=100,
    n_train=60,
    n_test=100,
    burn_in=40,
    n_samples=160,
    q=4,
    min_coeff_wordlength=3,
    max_coeff_wordlength=6,
)

AREA_MODEL = AreaModel(
    coeffs=np.array([0.3, 25.0, 15.0]),
    residual_sigma=6.0,
    wl_range=(3, 9),
    n_samples=40,
)


@pytest.fixture(scope="module")
def opt_config(synthetic_model_set):
    return OptimizerConfig(
        settings=SETTINGS,
        error_models=synthetic_model_set,
        area_model=AREA_MODEL,
        beta=4.0,
    )


@pytest.fixture(scope="module")
def x_train():
    return low_rank_gaussian(6, 3, 60, np.random.default_rng(0), noise=0.02)


@pytest.fixture(scope="module")
def result(opt_config, x_train):
    return optimize_designs(x_train, opt_config, seed=3)


class TestAlgorithm1:
    def test_q_designs_returned(self, result):
        assert len(result.designs) == SETTINGS.q

    def test_designs_have_k_columns(self, result):
        for d in result.designs:
            assert d.k == SETTINGS.k
            assert len(d.wordlengths) == SETTINGS.k
            assert set(d.wordlengths) <= set(SETTINGS.coeff_wordlengths)

    def test_area_estimates_attached(self, result):
        for d in result.designs:
            assert d.area_le is not None and d.area_le > 0

    def test_metadata_records_objective(self, result):
        for d in result.designs:
            md = d.metadata
            assert md["objective_t"] == pytest.approx(
                md["train_mse"] + md["overclocking_term"]
            )
            assert md["beta"] == 4.0

    def test_sampling_count_matches_runtime_model(self, result):
        """Eq. 7's structure: #wl * (1 + Q(K-1)) vector samplings."""
        n_wl = len(SETTINGS.coeff_wordlengths)
        expected = n_wl * (1 + SETTINGS.q * (SETTINGS.k - 1))
        assert len(result.sampling_times) == expected

    def test_designs_explain_data(self, result, x_train):
        from repro.core.objective import reconstruction_mse

        base = float((x_train**2).mean())
        for d in result.designs:
            assert reconstruction_mse(d.values, x_train) < 0.2 * base

    def test_deterministic(self, opt_config, x_train):
        a = optimize_designs(x_train, opt_config, seed=9)
        b = optimize_designs(x_train, opt_config, seed=9)
        for da, db in zip(a.designs, b.designs):
            assert np.array_equal(da.values, db.values)

    def test_candidate_history_recorded(self, result):
        assert len(result.candidate_history) == SETTINGS.k
        assert len(result.candidate_history[0]) == len(SETTINGS.coeff_wordlengths)

    def test_best_design(self, result):
        best = result.best_design()
        assert best.metadata["objective_t"] == min(
            d.metadata["objective_t"] for d in result.designs
        )


class TestValidation:
    def test_wrong_p_rejected(self, opt_config):
        with pytest.raises(OptimizationError):
            optimize_designs(np.zeros((4, 50)), opt_config, seed=0)

    def test_unscaled_data_rejected(self, opt_config):
        big = 5 * np.ones((6, 50))
        with pytest.raises(OptimizationError):
            optimize_designs(big, opt_config, seed=0)

    def test_missing_error_model_rejected(self, synthetic_model_set):
        bad_settings = TableISettings(
            min_coeff_wordlength=2, max_coeff_wordlength=6, burn_in=10, n_samples=20
        )
        with pytest.raises(OptimizationError):
            OptimizerConfig(
                settings=bad_settings,
                error_models=synthetic_model_set,  # has 3..9 only
                area_model=AREA_MODEL,
            )

    def test_bad_beta_rejected(self, synthetic_model_set):
        with pytest.raises(OptimizationError):
            OptimizerConfig(
                settings=SETTINGS,
                error_models=synthetic_model_set,
                area_model=AREA_MODEL,
                beta=0.0,
            )
