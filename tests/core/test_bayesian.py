"""Tests for repro.core.bayesian — the Gibbs projection sampler."""

import numpy as np
import pytest

from repro.core.bayesian import GibbsConfig, sample_projection_vector
from repro.core.klt import fit_klt
from repro.core.quantize import quantize_coefficients
from repro.errors import OptimizationError
from repro.models.prior import CoefficientPrior
from tests.conftest import make_synthetic_error_model


def _prior(wl=6, beta=4.0, freq=250.0):
    """Default prior at an error-free frequency: flat (pure likelihood)."""
    return CoefficientPrior.from_error_model(
        make_synthetic_error_model(wl), freq, beta
    )


def _rank1_data(p=6, n=120, seed=0, noise=0.01):
    rng = np.random.default_rng(seed)
    direction = np.linalg.qr(rng.normal(size=(p, 1)))[0][:, 0]
    x = np.outer(direction, rng.normal(size=n) * 0.5)
    x += noise * rng.normal(size=(p, n))
    return x, direction


FAST = GibbsConfig(burn_in=60, n_samples=240, thin=6)


class TestRecovery:
    def test_matches_quantised_klt_on_rank1(self):
        x, _ = _rank1_data()
        prior = _prior()
        oc = np.zeros_like(prior.values)
        s = sample_projection_vector(x, prior, oc, np.random.default_rng(1), FAST)
        klt_dir = fit_klt(x, 1)[:, 0]
        q = quantize_coefficients(klt_dir, 6)
        from repro.core.bayesian import _column_mse

        assert s.mse <= _column_mse(q.values, x) * 1.2

    def test_deterministic_given_rng(self):
        x, _ = _rank1_data()
        prior = _prior()
        oc = np.zeros_like(prior.values)
        a = sample_projection_vector(x, prior, oc, np.random.default_rng(3), FAST)
        b = sample_projection_vector(x, prior, oc, np.random.default_rng(3), FAST)
        assert np.array_equal(a.values, b.values)

    def test_output_on_grid(self):
        x, _ = _rank1_data()
        prior = _prior(wl=4)
        oc = np.zeros_like(prior.values)
        s = sample_projection_vector(x, prior, oc, np.random.default_rng(1), FAST)
        grid = set(np.round(prior.values, 12))
        assert all(np.round(v, 12) in grid for v in s.values)
        assert s.wordlength == 4
        assert np.all(s.magnitudes < (1 << 4))

    def test_score_decomposition(self):
        x, _ = _rank1_data()
        prior = _prior()
        oc = np.zeros_like(prior.values)
        s = sample_projection_vector(x, prior, oc, np.random.default_rng(1), FAST)
        assert s.score == pytest.approx(s.mse + s.oc_penalty)
        assert s.oc_penalty == 0.0  # zero oc table
        assert s.n_scored > 0


class TestPriorInfluence:
    def test_penalised_magnitudes_avoided(self):
        """With a harsh prior, dense-popcount magnitudes are avoided."""
        x, _ = _rank1_data(noise=0.05)
        wl = 6
        model = make_synthetic_error_model(wl, freqs=(250.0, 300.0, 350.0))
        # 350 MHz: variance = popcount * 200 (errors everywhere except 0).
        prior = CoefficientPrior.from_error_model(model, 350.0, beta=8.0)
        scale = 2.0 ** (-2 * (9 + wl))
        oc = prior.variances * scale
        s = sample_projection_vector(x, prior, oc, np.random.default_rng(2), FAST)
        pop = np.array([bin(m).count("1") for m in s.magnitudes])
        # The flat-prior solution would use dense magnitudes; the harsh
        # prior must keep the average popcount low.
        flat = CoefficientPrior.from_error_model(model, 250.0, beta=8.0)
        s_flat = sample_projection_vector(
            x, flat, np.zeros_like(flat.values), np.random.default_rng(2), FAST
        )
        pop_flat = np.array([bin(m).count("1") for m in s_flat.magnitudes])
        assert pop.mean() <= pop_flat.mean()

    def test_oc_penalty_reported(self):
        x, _ = _rank1_data()
        wl = 5
        model = make_synthetic_error_model(wl)
        prior = CoefficientPrior.from_error_model(model, 350.0, beta=0.5)
        oc = prior.variances * 2.0 ** (-2 * (9 + wl))
        s = sample_projection_vector(x, prior, oc, np.random.default_rng(4), FAST)
        if np.any(s.magnitudes != 0):
            expected_nonzero = any(
                bin(m).count("1") > 0 for m in s.magnitudes
            )
            assert (s.oc_penalty > 0) == expected_nonzero


class TestValidation:
    def test_bad_data_shape_rejected(self):
        prior = _prior()
        with pytest.raises(OptimizationError):
            sample_projection_vector(
                np.zeros(5), prior, np.zeros_like(prior.values), np.random.default_rng(0), FAST
            )

    def test_too_few_cases_rejected(self):
        prior = _prior()
        with pytest.raises(OptimizationError):
            sample_projection_vector(
                np.zeros((5, 1)), prior, np.zeros_like(prior.values), np.random.default_rng(0), FAST
            )

    def test_misaligned_oc_table_rejected(self):
        x, _ = _rank1_data()
        prior = _prior()
        with pytest.raises(OptimizationError):
            sample_projection_vector(
                x, prior, np.zeros(3), np.random.default_rng(0), FAST
            )

    def test_config_validation(self):
        with pytest.raises(OptimizationError):
            GibbsConfig(burn_in=-1)
        with pytest.raises(OptimizationError):
            GibbsConfig(n_samples=0)
        with pytest.raises(OptimizationError):
            GibbsConfig(thin=0)
        with pytest.raises(OptimizationError):
            GibbsConfig(a0=1.0)
        with pytest.raises(OptimizationError):
            GibbsConfig(polish_passes=-1)


class TestPolish:
    def test_polish_never_hurts(self):
        x, _ = _rank1_data(seed=5)
        prior = _prior()
        oc = np.zeros_like(prior.values)
        rough = sample_projection_vector(
            x, prior, oc, np.random.default_rng(7),
            GibbsConfig(burn_in=20, n_samples=40, thin=4, polish_passes=0),
        )
        polished = sample_projection_vector(
            x, prior, oc, np.random.default_rng(7),
            GibbsConfig(burn_in=20, n_samples=40, thin=4, polish_passes=6),
        )
        assert polished.score <= rough.score + 1e-12
