"""Tests for repro.core.objective — eq. (5) and its decomposition."""

import numpy as np
import pytest

from repro.core.design import LinearProjectionDesign
from repro.core.klt import fit_klt, klt_reference_design
from repro.core.objective import (
    dual_gram_diagonal,
    ls_factors,
    objective_t,
    overclocking_variance,
    reconstruction_mse,
)
from repro.datasets import low_rank_gaussian
from repro.errors import DesignError, ModelError
from repro.models.error_model import ErrorModelSet
from tests.conftest import make_synthetic_error_model


def _data(seed=0):
    return low_rank_gaussian(6, 3, 250, np.random.default_rng(seed), noise=0.02)


def _design(x, wl=6, freq=310.0):
    return klt_reference_design(x, 3, wl, 9, freq)


@pytest.fixture(scope="module")
def models():
    return ErrorModelSet({wl: make_synthetic_error_model(wl) for wl in range(3, 10)})


class TestLsFactors:
    def test_orthonormal_reduces_to_projection(self):
        x = _data()
        lam = fit_klt(x, 3)
        f = ls_factors(lam, x)
        assert np.allclose(f, lam.T @ x, atol=1e-8)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DesignError):
            ls_factors(np.zeros((4, 2)), np.zeros((5, 10)))

    def test_degenerate_columns_survive(self):
        x = _data()
        lam = np.zeros((6, 2))
        f = ls_factors(lam, x)
        assert np.all(np.isfinite(f))


class TestReconstructionMse:
    def test_perfect_basis_zero_mse(self):
        x = _data()
        lam = fit_klt(x, 6)
        assert reconstruction_mse(lam, x) < 1e-16

    def test_decreases_with_k(self):
        x = _data()
        mses = [reconstruction_mse(fit_klt(x, k), x) for k in (1, 2, 3)]
        assert mses == sorted(mses, reverse=True)

    def test_scale_invariant(self):
        """Dual/LS evaluation must not depend on column norms."""
        x = _data()
        lam = fit_klt(x, 3)
        assert reconstruction_mse(0.3 * lam, x) == pytest.approx(
            reconstruction_mse(lam, x)
        )


class TestOverclockingVariance:
    def test_zero_at_error_free_frequency(self, models):
        x = _data()
        d = _design(x, wl=6, freq=250.0)
        assert np.all(overclocking_variance(d, models) == 0)

    def test_positive_when_overclocked(self, models):
        x = _data()
        d = _design(x, wl=6, freq=350.0)
        v = overclocking_variance(d, models)
        assert v.shape == (3,)
        assert np.all(v > 0)

    def test_grows_with_frequency(self, models):
        x = _data()
        d = _design(x, wl=6, freq=310.0)
        lo = overclocking_variance(d, models, freq_mhz=300.0).sum()
        hi = overclocking_variance(d, models, freq_mhz=350.0).sum()
        assert hi > lo

    def test_wrong_data_width_rejected(self, models):
        x = _data()
        d = LinearProjectionDesign(
            values=np.full((6, 1), 0.25),
            magnitudes=np.full((6, 1), 16, dtype=np.int64),
            signs=np.ones((6, 1), dtype=np.int64),
            wordlengths=(6,),
            w_data=8,  # models were characterised for w_data=9
            freq_mhz=310.0,
        )
        with pytest.raises(ModelError):
            overclocking_variance(d, models)


class TestObjectiveT:
    def test_decomposition_sums(self, models):
        x = _data()
        d = _design(x, wl=7, freq=350.0)
        parts = objective_t(d, x, models)
        assert parts["objective_t"] == pytest.approx(
            parts["reconstruction_mse"] + parts["overclocking_term"]
        )

    def test_error_free_equals_mse(self, models):
        x = _data()
        d = _design(x, wl=7, freq=250.0)
        parts = objective_t(d, x, models)
        assert parts["overclocking_term"] == 0.0
        assert parts["objective_t"] == pytest.approx(parts["reconstruction_mse"])

    def test_dual_gram_orthonormal_is_ones(self):
        x = _data()
        lam = fit_klt(x, 3)
        assert np.allclose(dual_gram_diagonal(lam), 1.0, atol=1e-8)

    def test_dual_gram_amplifies_small_norms(self):
        x = _data()
        lam = 0.5 * fit_klt(x, 3)
        assert np.allclose(dual_gram_diagonal(lam), 4.0, atol=1e-6)

    def test_quantised_basis_near_unit_amplification(self, models):
        x = _data()
        d = _design(x, wl=8)
        amp = dual_gram_diagonal(d.values)
        assert np.all(np.abs(amp - 1.0) < 0.1)
