"""Tests for repro.core.design — the design records."""

import numpy as np
import pytest

from repro.core.design import DesignPoint, LinearProjectionDesign
from repro.core.klt import klt_reference_design
from repro.datasets import low_rank_gaussian
from repro.errors import DesignError


def _design(wl=5):
    x = low_rank_gaussian(6, 3, 100, np.random.default_rng(0))
    return klt_reference_design(x, 3, wl, 9, 310.0, area_le=300.0)


class TestValidation:
    def test_valid_design(self):
        d = _design()
        assert d.p == 6 and d.k == 3

    def test_wordlength_count_mismatch_rejected(self):
        d = _design()
        with pytest.raises(DesignError):
            LinearProjectionDesign(
                values=d.values,
                magnitudes=d.magnitudes,
                signs=d.signs,
                wordlengths=(5, 5),  # k = 3
                w_data=9,
                freq_mhz=310.0,
            )

    def test_magnitude_overflow_rejected(self):
        d = _design()
        bad = d.magnitudes.copy()
        bad[0, 0] = 1 << 5
        with pytest.raises(DesignError):
            LinearProjectionDesign(
                values=d.values,
                magnitudes=bad,
                signs=d.signs,
                wordlengths=d.wordlengths,
                w_data=9,
                freq_mhz=310.0,
            )

    def test_bad_frequency_rejected(self):
        d = _design()
        with pytest.raises(DesignError):
            LinearProjectionDesign(
                values=d.values,
                magnitudes=d.magnitudes,
                signs=d.signs,
                wordlengths=d.wordlengths,
                w_data=9,
                freq_mhz=0.0,
            )

    def test_one_d_values_rejected(self):
        with pytest.raises(DesignError):
            LinearProjectionDesign(
                values=np.zeros(6),
                magnitudes=np.zeros(6, dtype=np.int64),
                signs=np.ones(6, dtype=np.int64),
                wordlengths=(5,),
                w_data=9,
                freq_mhz=310.0,
            )


class TestBehaviour:
    def test_project_reconstruct_shapes(self):
        d = _design()
        x = np.zeros((6, 10))
        f = d.project(x)
        assert f.shape == (3, 10)
        assert d.reconstruct(f).shape == (6, 10)

    def test_values_consistent_with_sign_magnitude(self):
        d = _design()
        recon = d.signs * d.magnitudes / (1 << 5)
        assert np.allclose(recon, d.values)

    def test_with_area(self):
        d = _design().with_area(512.0)
        assert d.area_le == 512.0

    def test_describe_mentions_method_and_freq(self):
        s = _design().describe()
        assert "klt" in s and "310" in s

    def test_column_accessor(self):
        d = _design()
        assert np.array_equal(d.column(1), d.values[:, 1])


class TestDesignPoint:
    def test_valid_point(self):
        p = DesignPoint(design=_design(), domain="actual", mse=0.1, area_le=300.0, freq_mhz=310.0)
        assert p.mse == 0.1

    def test_negative_mse_rejected(self):
        with pytest.raises(DesignError):
            DesignPoint(design=_design(), domain="actual", mse=-0.1, area_le=1.0, freq_mhz=310.0)

    def test_negative_area_rejected(self):
        with pytest.raises(DesignError):
            DesignPoint(design=_design(), domain="actual", mse=0.1, area_le=-1.0, freq_mhz=310.0)
