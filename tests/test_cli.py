"""Tests for repro.cli."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "4900" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_fig7_runs(self, capsys):
        assert main(["fig7", "--scale", "0.01", "--seed", "42"]) == 0
        out = capsys.readouterr().out
        assert "entropy" in out

    def test_fig8_renders_table(self, capsys):
        assert main(["fig8", "--scale", "0.01", "--seed", "42"]) == 0
        out = capsys.readouterr().out
        assert "tool Fmax" in out
        assert "9-bit tool Fmax" in out
