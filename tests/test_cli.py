"""Tests for repro.cli."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "4900" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_fig7_runs(self, capsys):
        assert main(["fig7", "--scale", "0.01", "--seed", "42"]) == 0
        out = capsys.readouterr().out
        assert "entropy" in out

    def test_fig8_renders_table(self, capsys):
        assert main(["fig8", "--scale", "0.01", "--seed", "42"]) == 0
        out = capsys.readouterr().out
        assert "tool Fmax" in out
        assert "9-bit tool Fmax" in out


class TestLintCli:
    def test_clean_design_exits_zero(self, capsys):
        assert main(["lint", "ccm", "93", "8"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_unsigned_multiplier_clean(self, capsys):
        assert main(["lint", "unsigned_multiplier", "8", "8"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s), 0 info(s)" in out

    def test_warnings_fail_only_at_threshold(self, capsys):
        # ccm 0 N produces NL011 warnings: pass by default, fail on request.
        assert main(["lint", "ccm", "0", "8"]) == 0
        assert main(["lint", "ccm", "0", "8", "--fail-on", "warning"]) == 1
        assert "NL011" in capsys.readouterr().out

    def test_disable_suppresses_rule(self, capsys):
        code = main(["lint", "ccm", "0", "8", "--disable", "NL011",
                     "--fail-on", "warning"])
        assert code == 0
        assert "NL011" not in capsys.readouterr().out

    def test_json_format(self, capsys):
        import json

        assert main(["lint", "mac", "4", "4", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["error"] == 0
        assert data["diagnostics"] == []

    def test_budget_flags_reach_config(self, capsys):
        code = main(["lint", "unsigned_multiplier", "8", "8",
                     "--max-depth", "1", "--fail-on", "warning"])
        assert code == 1
        assert "NL010" in capsys.readouterr().out

    def test_bad_parameter_count_exits_two(self, capsys):
        assert main(["lint", "ccm", "93"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_generator_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "not-a-generator", "8"])


class TestAnalyzeCli:
    def test_ccm_proof_exits_zero(self, capsys):
        assert main(["analyze", "ccm", "93", "8", "--prove"]) == 0
        out = capsys.readouterr().out
        assert "PROVED" in out and "exhaustive" in out

    def test_assumption_reports_frozen_cone(self, capsys):
        code = main(
            ["analyze", "unsigned_multiplier", "4", "4", "--assume", "b=5"]
        )
        assert code == 0
        assert "WL003" in capsys.readouterr().out

    def test_overflowing_assumption_exits_one(self, capsys):
        code = main(
            ["analyze", "unsigned_multiplier", "4", "4", "--assume", "b=99"]
        )
        assert code == 1
        assert "WL001" in capsys.readouterr().out

    def test_broken_proof_exits_one(self, capsys):
        # A lying CCM coefficient fails both the WL004 gate and the proof.
        code = main(["analyze", "ccm", "93", "8", "--prove"])
        assert code == 0
        code = main(
            ["analyze", "unsigned_multiplier", "8", "8", "--assume", "b=7",
             "--prove"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "256 vector(s)" in out

    def test_sta_report(self, capsys):
        code = main(
            ["analyze", "unsigned_multiplier", "4", "4",
             "--assume", "b=0", "--sta"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sensitised fmax" in out

    def test_json_format(self, capsys):
        import json

        code = main(
            ["analyze", "ccm", "93", "8", "--prove", "--format", "json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["proof"]["passed"] is True
        assert data["dataflow"]["netlist"] == "ccm93x8"
        assert data["lint"]["counts"]["error"] == 0

    def test_malformed_assumption_exits_two(self, capsys):
        code = main(
            ["analyze", "unsigned_multiplier", "4", "4", "--assume", "b=x"]
        )
        assert code == 2

    def test_bad_params_exit_two(self, capsys):
        assert main(["analyze", "ccm", "93"]) == 2

    def test_unknown_generator_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["analyze", "nope", "4"])
