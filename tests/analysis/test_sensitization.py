"""Sensitisation-aware STA tests (acceptance: tightness + agreement)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    agreement_report,
    coefficient_timing_profile,
    sensitized_sta,
)
from repro.characterization.circuit import CharacterizationCircuit
from repro.errors import AnalysisError
from repro.models.error_model import build_error_model
from repro.netlist import ccm_multiplier

#: Multiplicands exercised by the tightness tests: boundary and mixed
#: popcount values of the 8-bit coefficient bus.
SAMPLE_MS = [0, 1, 2, 37, 128, 222, 255]


@pytest.fixture(scope="module")
def profile8(placed_mult8):
    return coefficient_timing_profile(placed_mult8, multiplicands=SAMPLE_MS)


class TestSensitizedSta:
    def test_never_worse_than_plain_sta(self, placed_mult8):
        plain = placed_mult8.device_sta()
        for m in SAMPLE_MS:
            pruned = sensitized_sta(placed_mult8, {"b": m})
            assert pruned.critical_path_ns <= plain.critical_path_ns + 1e-12
            for bus, arr in plain.output_arrival.items():
                assert np.all(
                    pruned.output_arrival[bus] <= arr + 1e-12
                ), f"m={m} bus={bus}"

    def test_no_assumptions_matches_plain_on_live_logic(self, placed_mult8):
        # The generic multiplier has no structurally-constant live cone,
        # so unconditional pruning must not change the bound.
        plain = placed_mult8.device_sta()
        pruned = sensitized_sta(placed_mult8)
        assert pruned.critical_path_ns == pytest.approx(plain.critical_path_ns)

    def test_zero_multiplicand_freezes_everything(self, placed_mult8):
        pruned = sensitized_sta(placed_mult8, {"b": 0})
        assert np.all(pruned.output_arrival["p"] == 0.0)

    def test_bound_is_sound_for_simulated_transitions(self, placed_mult8):
        """Settle times under the assumption never exceed the pruned bound."""
        from repro.netlist.core import bits_from_ints
        from repro.timing.simulator import simulate_transitions

        rng = np.random.default_rng(5)
        for m in [1, 37, 222]:
            pruned = sensitized_sta(placed_mult8, {"b": m})
            a = rng.integers(0, 256, size=33)
            inputs = {
                "a": bits_from_ints(a, 8),
                "b": bits_from_ints(np.full(33, m), 8),
            }
            sim = simulate_transitions(
                placed_mult8.netlist,
                inputs,
                placed_mult8.node_delay,
                placed_mult8.edge_delay,
            )
            out_ids = placed_mult8.netlist.output_buses["p"]
            settle = sim.settle[out_ids]  # (width, n_transitions)
            # settle is float32; allow for its rounding against the
            # float64 STA bound.
            bound = pruned.output_arrival["p"][:, None]
            assert np.all(settle.astype(np.float64) <= bound * (1 + 1e-6) + 1e-6)


class TestCoefficientTimingProfile:
    def test_acceptance_min_period_below_worst_case(self, profile8):
        # Every (coefficient, output bit) cell obeys the worst-case bound.
        assert np.all(
            profile8.min_period_ns
            <= profile8.worst_case_period_ns[None, :] + 1e-12
        )

    def test_acceptance_m0_strictly_tighter(self, profile8):
        # m=0 freezes the whole product: only setup remains, which is
        # strictly below the worst-case period of every real path.
        row0 = profile8.row(0)
        assert np.all(row0 == pytest.approx(profile8.setup_ns))
        assert np.all(row0 < profile8.worst_case_period_ns)

    def test_static_fmax_shapes(self, profile8):
        fmax = profile8.static_fmax_mhz()
        assert fmax.shape == (len(SAMPLE_MS),)
        # m=0 has no sensitisable path beyond setup: huge (or inf) bound.
        assert fmax[0] == np.max(fmax)
        assert np.all(fmax > 0)

    def test_row_unknown_multiplicand_rejected(self, profile8):
        with pytest.raises(AnalysisError, match="not in the analysed"):
            profile8.row(3)

    def test_variance_proxy_monotone_in_frequency(self, profile8):
        slow = profile8.variance_proxy_at(100.0)
        fast = profile8.variance_proxy_at(2000.0)
        assert np.all(slow <= fast)
        # At a clock every bit makes, the static error prediction is zero.
        assert np.all(profile8.variance_proxy_at(1.0) == 0.0)

    def test_validation(self, placed_mult8):
        with pytest.raises(AnalysisError, match="ascending"):
            coefficient_timing_profile(placed_mult8, multiplicands=[3, 3])
        with pytest.raises(AnalysisError, match="no input bus"):
            coefficient_timing_profile(placed_mult8, coeff_bus="zz")
        with pytest.raises(AnalysisError, match="no output bus"):
            coefficient_timing_profile(placed_mult8, out_bus="zz")

    def test_ccm_profile_over_data_bus(self, flow):
        # The same machinery works with the data bus as sweep variable.
        placed = flow.run(ccm_multiplier(93, 6), seed=3)
        prof = coefficient_timing_profile(
            placed, multiplicands=[0, 1, 63], coeff_bus="x"
        )
        assert prof.min_period_ns.shape == (3, prof.width)

    def test_as_dict_jsonable(self, profile8):
        import json

        blob = json.loads(json.dumps(profile8.as_dict()))
        assert blob["multiplicands"] == SAMPLE_MS
        assert len(blob["min_period_ns"]) == len(SAMPLE_MS)


class TestAgreement:
    def test_acceptance_consistent_with_characterisation(
        self, device, char_result
    ):
        """Static-clean cells never show measured errors (same placement)."""
        loc = char_result.locations[0]
        model = build_error_model(char_result, location=loc)
        placed = CharacterizationCircuit(
            device, char_result.w_data, char_result.w_coeff,
            anchor=loc, seed=11,
        ).placed
        profile = coefficient_timing_profile(placed)
        report = agreement_report(profile, model)
        assert report["consistent"], report["violations"]
        assert report["n_cells"] == 16 * len(model.freqs_mhz)
        # The whole point: some coefficient beats the worst-case bound.
        assert report["n_tighter_than_worst_case"] >= 1

    def test_guard_validation(self, profile8, error_model):
        with pytest.raises(AnalysisError, match="guard_ns"):
            agreement_report(profile8, error_model, guard_ns=-1.0)

    def test_disjoint_multiplicands_rejected(self, placed_mult8, error_model):
        profile = coefficient_timing_profile(
            placed_mult8, multiplicands=[200, 250]
        )
        with pytest.raises(AnalysisError, match="shared"):
            agreement_report(profile, error_model)
