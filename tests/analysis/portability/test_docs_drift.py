"""The DX tables in docs/static_analysis.md are generated; keep it so."""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.portability import (
    DX_REGISTRY,
    FROZEN_CONTRACTS,
    dx_rule_table_markdown,
    wire_contracts_markdown,
)

DOC = Path(__file__).resolve().parents[3] / "docs" / "static_analysis.md"


def _generated_block(marker: str) -> str:
    text = DOC.read_text()
    begin, end = f"<!-- {marker}:begin", f"<!-- {marker}:end -->"
    assert begin in text and end in text, f"{marker} markers missing"
    start = text.index("\n", text.index(begin)) + 1
    return text[start : text.index(end)].strip()


def test_dx_rule_table_matches_registry():
    assert _generated_block("dx-rule-table") == dx_rule_table_markdown().strip(), (
        "docs/static_analysis.md DX rule table is stale; regenerate the "
        "block between the dx-rule-table markers with "
        "repro.analysis.portability.dx_rule_table_markdown()"
    )


def test_wire_contracts_table_matches_registry():
    assert _generated_block("wire-contracts") == wire_contracts_markdown().strip(), (
        "docs/static_analysis.md wire-contract table is stale; regenerate "
        "the block between the wire-contracts markers with "
        "repro.analysis.portability.wire_contracts_markdown()"
    )


def test_every_dx_rule_documented_exactly_once():
    table = _generated_block("dx-rule-table")
    for rule_id in DX_REGISTRY:
        assert len(re.findall(rf"\| {rule_id} \|", table)) == 1


def test_every_frozen_fingerprint_documented():
    table = _generated_block("wire-contracts")
    for name, frozen in FROZEN_CONTRACTS.items():
        assert f"`{name}`" in table
        assert f"`{frozen}`" in table


def test_doc_mentions_portability_surfaces():
    text = DOC.read_text()
    for needle in (
        "repro audit --family dx",
        "repro audit --contracts",
        "Distribution readiness",
        "location transparency",
        "FROZEN_CONTRACTS",
        "build_module_index",
        "allow[DX007]",
    ):
        assert needle in text, f"docs/static_analysis.md lost mention of {needle!r}"
