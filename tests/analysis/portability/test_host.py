"""Host-dependence rules (DX006–DX008) over artefact-reachable code.

Reachability is rooted at the declared artefact entry points with the
same conservative call graph the DT audit uses: hazards in unreachable
code stay silent, hazards behind helper calls are found.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.portability import audit_portability


def run_host_audit(tmp_path: Path, files: dict[str, str], entry_points, allowances=()):
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for name, text in files.items():
        (pkg / name).write_text(textwrap.dedent(text))
    return audit_portability(
        [pkg],
        boundary_types=(),
        cache_contracts=(),
        entry_points=tuple(entry_points),
        allowances=tuple(allowances),
        check_contracts=False,
    )


def rules_fired(report):
    return {f.rule for f in report.findings}


def test_gethostname_in_artefact_path_is_dx007(tmp_path):
    report = run_host_audit(
        tmp_path,
        {
            "store.py": """
            import socket

            def save(payload):
                return {"host": socket.gethostname(), "payload": payload}
            """
        },
        ["pkg.store:save"],
    )
    assert rules_fired(report) == {"DX007"}
    (finding,) = report.findings
    assert "socket.gethostname" in finding.message


def test_getcwd_in_artefact_path_is_dx008(tmp_path):
    report = run_host_audit(
        tmp_path,
        {
            "store.py": """
            import os

            def save(payload):
                return os.path.join(os.getcwd(), payload)
            """
        },
        ["pkg.store:save"],
    )
    assert rules_fired(report) == {"DX008"}


def test_abs_path_literal_and_expanduser_are_dx006(tmp_path):
    report = run_host_audit(
        tmp_path,
        {
            "store.py": """
            import os.path

            def save(payload):
                root = "/var/cache/repro"
                alt = os.path.expanduser("~/repro")
                return (root, alt, payload)
            """
        },
        ["pkg.store:save"],
    )
    assert rules_fired(report) == {"DX006"}
    assert len(report.findings) >= 2
    messages = " ".join(f.message for f in report.findings)
    assert "/var/cache/repro" in messages
    assert "os.path.expanduser" in messages


def test_hazard_behind_helper_call_is_found(tmp_path):
    report = run_host_audit(
        tmp_path,
        {
            "store.py": """
            import platform

            def _tag():
                return platform.node()

            def save(payload):
                return (_tag(), payload)
            """
        },
        ["pkg.store:save"],
    )
    assert rules_fired(report) == {"DX007"}
    (finding,) = report.findings
    assert finding.qualname == "_tag"


def test_hazard_in_unreachable_code_is_silent(tmp_path):
    report = run_host_audit(
        tmp_path,
        {
            "store.py": """
            import socket

            def save(payload):
                return payload

            def debug_banner():
                return socket.gethostname()
            """
        },
        ["pkg.store:save"],
    )
    assert report.clean


def test_pid_in_artefact_path_suppressible_by_pragma(tmp_path):
    report = run_host_audit(
        tmp_path,
        {
            "store.py": """
            import os

            def save(payload):
                tmp = f"out.tmp.{os.getpid()}"  # repro: allow[DX007] -- pid names the temp file only
                return (tmp, payload)
            """
        },
        ["pkg.store:save"],
    )
    assert report.clean
    (suppression,) = report.suppressions
    assert suppression.rule == "DX007"


def test_allowance_policy_covers_hazard(tmp_path):
    from repro.analysis.portability.rules import EFFECT_HOST_IDENTITY
    from repro.analysis.sanitizer import Allowance

    report = run_host_audit(
        tmp_path,
        {
            "store.py": """
            import os

            def save(payload):
                return (os.getpid(), payload)
            """
        },
        ["pkg.store:save"],
        allowances=[
            Allowance(
                EFFECT_HOST_IDENTITY,
                "pkg.store",
                "save",
                "pid tags diagnostics only in this fixture",
            )
        ],
    )
    assert report.clean
    assert not report.suppressions  # policy, not pragma


def test_relative_string_literals_are_not_flagged(tmp_path):
    report = run_host_audit(
        tmp_path,
        {
            "store.py": """
            def save(payload):
                rel = "cache/entries"
                sep = "/"
                doc = '''
                /multi-line doc, not a path literal
                '''
                return (rel, sep, doc, payload)
            """
        },
        ["pkg.store:save"],
    )
    assert report.clean
