"""Payload-purity rules (DX001–DX004) on seeded boundary-type fixtures.

Each test writes a small package to ``tmp_path``, declares one of its
classes a boundary type, and asserts the expected DX rule fires — or
stays silent for pure payloads.  The positive cases are the ISSUE's
acceptance fixtures: a shard carrying a lock, a handle, a callable, a
logger; transitively through nested dataclasses, string annotations,
unions and base classes.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.portability import audit_portability


def run_purity(tmp_path: Path, files: dict[str, str], boundary_types):
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for name, text in files.items():
        target = pkg / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    return audit_portability(
        [pkg],
        boundary_types=tuple(boundary_types),
        cache_contracts=(),
        entry_points=(),
        allowances=(),
        check_contracts=False,
    )


def rules_fired(report):
    return {f.rule for f in report.findings}


def test_thread_affine_lock_field_is_dx001(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            import threading
            from dataclasses import dataclass

            @dataclass
            class Shard:
                li: int
                guard: threading.Lock
            """
        },
        ["pkg.shard:Shard"],
    )
    assert rules_fired(report) == {"DX001"}
    (finding,) = report.findings
    assert finding.qualname == "Shard.guard"
    assert "threading.Lock" in finding.message


def test_from_import_lock_resolves_through_import_map(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            from threading import Event
            from dataclasses import dataclass

            @dataclass
            class Shard:
                done: Event
            """
        },
        ["pkg.shard:Shard"],
    )
    assert rules_fired(report) == {"DX001"}


def test_open_handle_field_is_dx002(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            import io
            import socket
            from dataclasses import dataclass

            @dataclass
            class Shard:
                sink: io.BytesIO
                peer: socket.socket
            """
        },
        ["pkg.shard:Shard"],
    )
    assert rules_fired(report) == {"DX002"}
    assert len(report.findings) == 2


def test_callable_field_is_dx003(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            from typing import Callable
            from dataclasses import dataclass

            @dataclass
            class Shard:
                hook: Callable[[int], int]
            """
        },
        ["pkg.shard:Shard"],
    )
    assert rules_fired(report) == {"DX003"}


def test_ambient_logger_field_is_dx004(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            import logging
            from dataclasses import dataclass

            @dataclass
            class Shard:
                log: logging.Logger
            """
        },
        ["pkg.shard:Shard"],
    )
    assert rules_fired(report) == {"DX004"}


def test_impurity_found_transitively_through_nested_dataclass(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "inner.py": """
            import queue
            from dataclasses import dataclass

            @dataclass
            class Mailbox:
                pending: queue.Queue
            """,
            "shard.py": """
            from dataclasses import dataclass
            from .inner import Mailbox

            @dataclass
            class Shard:
                li: int
                box: Mailbox
            """,
        },
        ["pkg.shard:Shard"],
    )
    assert rules_fired(report) == {"DX001"}
    (finding,) = report.findings
    assert finding.module == "pkg.inner"
    assert finding.qualname == "Mailbox.pending"
    assert "via Shard -> Mailbox" in finding.message


def test_string_forward_reference_annotations_resolve(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            import threading
            from dataclasses import dataclass

            @dataclass
            class Shard:
                guard: "threading.Lock"
            """
        },
        ["pkg.shard:Shard"],
    )
    assert rules_fired(report) == {"DX001"}


def test_union_and_optional_annotations_are_walked(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            import threading
            from typing import Optional
            from dataclasses import dataclass

            @dataclass
            class Shard:
                a: threading.Lock | None
                b: Optional[threading.Event]
            """
        },
        ["pkg.shard:Shard"],
    )
    assert rules_fired(report) == {"DX001"}
    assert len(report.findings) == 2


def test_impurity_inherited_from_base_class(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            import threading
            from dataclasses import dataclass

            @dataclass
            class Base:
                guard: threading.RLock

            @dataclass
            class Shard(Base):
                li: int
            """
        },
        ["pkg.shard:Shard"],
    )
    assert rules_fired(report) == {"DX001"}
    (finding,) = report.findings
    assert finding.qualname == "Base.guard"


def test_pure_payload_is_clean(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            from dataclasses import dataclass
            import numpy as np

            @dataclass
            class Shard:
                li: int
                location: tuple[int, int]
                stimulus: np.ndarray
                params: dict[str, float]
                note: str | None
            """
        },
        ["pkg.shard:Shard"],
    )
    assert report.clean


def test_pragma_suppresses_purity_finding(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            import threading
            from dataclasses import dataclass

            @dataclass
            class Shard:
                guard: threading.Lock  # repro: allow[DX001] -- stripped before pickling by __getstate__
            """
        },
        ["pkg.shard:Shard"],
    )
    assert report.clean
    (suppression,) = report.suppressions
    assert suppression.rule == "DX001"
    assert "stripped before pickling" in suppression.reason


def test_cyclic_type_graph_terminates(tmp_path):
    report = run_purity(
        tmp_path,
        {
            "shard.py": """
            from dataclasses import dataclass

            @dataclass
            class Node:
                parent: "Node | None"
                value: int
            """
        },
        ["pkg.shard:Node"],
    )
    assert report.clean
