"""The library's own source must satisfy its own portability policy.

The in-tree twin of the ``scripts/check.sh`` DX gate: ``repro audit
--family dx src/repro`` reports zero unsuppressed findings, the shared
module index makes a combined DT + DX run single-parse without changing
either report, and the CLI exit codes distinguish clean from drifted.
"""

from __future__ import annotations

from functools import cache
from pathlib import Path

from repro.analysis.portability import audit_portability
from repro.analysis.portability.catalog import ARTEFACT_ENTRY_POINTS
from repro.analysis.sanitizer import audit_paths, build_module_index

SRC = Path(__file__).resolve().parents[3] / "src" / "repro"


@cache
def _report():
    return audit_portability([SRC])


def test_library_source_is_dx_clean():
    report = _report()
    assert report.clean, "\n" + report.to_text()


def test_artefact_entry_points_all_resolve():
    report = _report()
    assert report.entry_points == ARTEFACT_ENTRY_POINTS
    assert report.n_reachable >= len(ARTEFACT_ENTRY_POINTS), (
        f"only {report.n_reachable} reachable functions from "
        f"{len(ARTEFACT_ENTRY_POINTS)} artefact entry points: an entry "
        "point no longer resolves"
    )


def test_shared_index_reproduces_both_reports():
    # The single-parse path check.sh uses must be equivalent to two
    # standalone runs, byte for byte.
    index = build_module_index([SRC])
    assert audit_paths(index=index).to_json() == audit_paths([SRC]).to_json()
    assert (
        audit_portability(index=index).to_json() == audit_portability([SRC]).to_json()
    )


def test_dx_report_is_deterministic():
    assert audit_portability([SRC]).to_json() == audit_portability([SRC]).to_json()


def test_disable_skips_a_dx_rule(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "store.py").write_text(
        "import socket\n\ndef save(x):\n    return (socket.gethostname(), x)\n"
    )
    kwargs = dict(
        boundary_types=(),
        cache_contracts=(),
        entry_points=("pkg.store:save",),
        allowances=(),
        check_contracts=False,
    )
    assert not audit_portability([pkg], **kwargs).clean
    assert audit_portability([pkg], disabled=frozenset({"DX007"}), **kwargs).clean


# ----------------------------------------------------------------------
# CLI surface.


def _run_cli(argv):
    from repro.cli import main

    return main(["audit", *argv])


def test_cli_family_dx_exits_zero_on_clean_tree(capsys):
    assert _run_cli(["--family", "dx", str(SRC)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_contracts_exits_zero_without_drift(capsys):
    assert _run_cli(["--contracts", str(SRC)]) == 0
    assert "fingerprints match" in capsys.readouterr().out


def test_cli_family_dx_exits_one_on_seeded_hazard(tmp_path, capsys, monkeypatch):
    pkg = tmp_path / "repro_fixture"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "shard.py").write_text(
        "import threading\n"
        "from dataclasses import dataclass\n\n"
        "@dataclass\n"
        "class Shard:\n"
        "    guard: threading.Lock\n"
    )
    import repro.analysis.portability.catalog as catalog

    monkeypatch.setattr(
        catalog, "BOUNDARY_TYPES", ("repro_fixture.shard:Shard",)
    )
    # The auditor reads the catalogue at call time through its defaults.
    import repro.analysis.portability.auditor as auditor

    monkeypatch.setattr(
        auditor, "BOUNDARY_TYPES", ("repro_fixture.shard:Shard",)
    )
    assert _run_cli(["--family", "dx", str(pkg)]) == 1
    assert "DX001" in capsys.readouterr().out


def test_cli_rules_prints_both_families(capsys):
    assert _run_cli(["--rules"]) == 0
    out = capsys.readouterr().out
    assert "DT001" in out and "DX001" in out and "DX009" in out


def test_cli_trace_records_audit_telemetry(tmp_path, capsys):
    import json

    base = tmp_path / "audit_run"
    assert _run_cli(["--trace", str(base), "--family", "dx", str(SRC)]) == 0
    capsys.readouterr()

    lines = (base.parent / f"{base.name}.jsonl").read_text().splitlines()
    names = {json.loads(line)["name"] for line in lines}
    assert "audit.run" in names

    metrics = json.loads(
        (base.parent / f"{base.name}.metrics.json").read_text()
    )
    counters = metrics.get("counters", metrics)
    assert counters["audit.dx.findings"] == 0
    assert counters["audit.dx.contracts_checked"] == 1


def test_cli_trace_does_not_change_the_report(tmp_path, capsys):
    assert _run_cli(["--family", "dx", str(SRC)]) == 0
    plain = capsys.readouterr().out
    assert (
        _run_cli(["--trace", str(tmp_path / "t"), "--family", "dx", str(SRC)])
        == 0
    )
    traced = capsys.readouterr().out
    assert traced == plain
