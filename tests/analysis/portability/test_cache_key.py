"""Cache-key completeness (DX005) on seeded getter fixtures.

The ISSUE's acceptance case: a cache getter that *uses* a parameter to
build the artefact but leaves it out of the key construction must
produce exactly one DX005 finding; complete keys — including keys built
by a delegated same-module helper — stay clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.portability import CacheKeyContract, audit_portability


def run_key_audit(tmp_path: Path, source: str, contract: CacheKeyContract):
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "cache.py").write_text(textwrap.dedent(source))
    return audit_portability(
        [pkg],
        boundary_types=(),
        cache_contracts=(contract,),
        entry_points=(),
        allowances=(),
        check_contracts=False,
    )


CONTRACT = CacheKeyContract(
    getter="pkg.cache:Cache.get_or_place",
    key_type="pkg.cache:Key",
)


def test_complete_key_is_clean(tmp_path):
    report = run_key_audit(
        tmp_path,
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Key:
            serial: int
            width: int
            seed: int

        class Cache:
            def get_or_place(self, serial, width, seed):
                key = Key(serial=serial, width=width, seed=seed)
                return self._lookup(key)

            def _lookup(self, key):
                return key
        """,
        CONTRACT,
    )
    assert report.clean


def test_used_but_unkeyed_parameter_is_dx005(tmp_path):
    report = run_key_audit(
        tmp_path,
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Key:
            serial: int
            width: int

        class Cache:
            def get_or_place(self, serial, width, temperature):
                key = Key(serial=serial, width=width)
                return self._build(key, temperature)

            def _build(self, key, temperature):
                return (key, temperature)
        """,
        CONTRACT,
    )
    assert [f.rule for f in report.findings] == ["DX005"]
    (finding,) = report.findings
    assert "`temperature`" in finding.message
    assert "share one cache entry" in finding.message


def test_key_built_by_delegated_helper_is_clean(tmp_path):
    report = run_key_audit(
        tmp_path,
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Key:
            serial: int
            width: int

        def make_key(serial, width):
            return Key(serial=serial, width=width)

        class Cache:
            def get_or_place(self, serial, width):
                key = make_key(serial, width)
                return key
        """,
        CONTRACT,
    )
    assert report.clean


def test_classmethod_key_constructor_counts(tmp_path):
    report = run_key_audit(
        tmp_path,
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Key:
            serial: int
            width: int

            @classmethod
            def for_device(cls, device, width):
                return cls(serial=device.serial, width=width)

        class Cache:
            def get_or_place(self, device, width):
                key = Key.for_device(device, width)
                return key
        """,
        CONTRACT,
    )
    assert report.clean


def test_unused_parameter_is_not_flagged(tmp_path):
    # A parameter the body never touches cannot influence the artefact;
    # demanding it in the key would force spurious cache splits.
    report = run_key_audit(
        tmp_path,
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Key:
            serial: int

        class Cache:
            def get_or_place(self, serial, _reserved):
                key = Key(serial=serial)
                return key
        """,
        CONTRACT,
    )
    assert report.clean


def test_exempt_parameter_is_not_flagged(tmp_path):
    contract = CacheKeyContract(
        getter="pkg.cache:Cache.get_or_place",
        key_type="pkg.cache:Key",
        exempt=("progress",),
    )
    report = run_key_audit(
        tmp_path,
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Key:
            serial: int

        class Cache:
            def get_or_place(self, serial, progress):
                progress("placing")
                key = Key(serial=serial)
                return key
        """,
        contract,
    )
    assert report.clean


def test_getter_without_key_construction_is_flagged(tmp_path):
    report = run_key_audit(
        tmp_path,
        """
        class Key:
            pass

        class Cache:
            def get_or_place(self, serial):
                return serial
        """,
        CONTRACT,
    )
    assert [f.rule for f in report.findings] == ["DX005"]
    assert "never constructs" in report.findings[0].message


def test_missing_getter_is_flagged(tmp_path):
    report = run_key_audit(
        tmp_path,
        """
        class Key:
            pass
        """,
        CONTRACT,
    )
    assert [f.rule for f in report.findings] == ["DX005"]
    assert "not found" in report.findings[0].message


def test_real_placed_cache_contract_is_clean():
    # The shipped contract over the real tree: every influential input
    # of PlacedDesignCache.get_or_place reaches PlacedKey.for_device.
    report = audit_portability(
        ["src/repro/parallel"],
        boundary_types=(),
        entry_points=(),
        check_contracts=False,
    )
    assert not [f for f in report.findings if f.rule == "DX005"]
