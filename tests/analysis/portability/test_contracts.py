"""Frozen wire-schema contracts: derivation, drift detection, DX009.

The acceptance fixture: a fixture tree whose serve protocol dropped an
op must fingerprint differently and produce exactly one DX009 finding;
the real tree must verify drift-free against the committed registry.
"""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

from repro.analysis.portability import (
    CONTRACTS,
    FROZEN_CONTRACTS,
    audit_portability,
    contract_shapes,
    fingerprint,
    verify_contracts,
)
from repro.analysis.sanitizer import build_module_index

REPO_SRC = Path(__file__).resolve().parents[3] / "src" / "repro"


def test_real_tree_has_no_drift():
    index = build_module_index([REPO_SRC])
    assert verify_contracts(index) == []


def test_every_contract_shape_derives_on_real_tree():
    index = build_module_index([REPO_SRC])
    shapes = contract_shapes(index)
    for contract in CONTRACTS:
        assert shapes[contract.name] is not None, contract.name
        assert len(fingerprint(shapes[contract.name])) == 16


def test_frozen_registry_covers_every_contract_exactly():
    assert set(FROZEN_CONTRACTS) == {c.name for c in CONTRACTS}
    for value in FROZEN_CONTRACTS.values():
        assert len(value) == 16  # real fingerprints, no placeholders


def test_serve_protocol_shape_tracks_ops_and_vocabularies():
    index = build_module_index([REPO_SRC])
    shape = contract_shapes(index)["serve.protocol.v1"]
    assert "submit" in shape["ops"] and "shutdown" in shape["ops"]
    assert shape["job_kinds"] == ["characterize", "fit_area", "optimize", "evaluate"]
    assert "queued" in shape["job_states"]
    assert "done" in shape["terminal_states"]


def test_tampered_frozen_fingerprint_is_reported_as_drift():
    index = build_module_index([REPO_SRC])
    frozen = dict(FROZEN_CONTRACTS)
    frozen["cache.entry.v2"] = "0" * 16
    (drift,) = verify_contracts(index, frozen)
    assert drift.name == "cache.entry.v2"
    assert drift.frozen == "0" * 16
    assert drift.derived == FROZEN_CONTRACTS["cache.entry.v2"]
    assert "update" in drift.detail and "FROZEN_CONTRACTS" in drift.detail


def test_missing_frozen_entry_is_drift():
    index = build_module_index([REPO_SRC])
    frozen = dict(FROZEN_CONTRACTS)
    del frozen["shard.descriptor.v1"]
    (drift,) = verify_contracts(index, frozen)
    assert drift.name == "shard.descriptor.v1"
    assert drift.frozen is None


def _drifted_serve_tree(tmp_path: Path) -> Path:
    """A copy of the real tree whose job server dropped the `wait` op."""
    root = tmp_path / "repro"
    shutil.copytree(REPO_SRC, root)
    server = root / "serve" / "server.py"
    text = server.read_text()
    assert 'op == "wait"' in text
    server.write_text(text.replace('op == "wait"', 'op == "hold"'))
    return root


def test_drifted_serve_op_changes_fingerprint_and_fires_dx009(tmp_path):
    root = _drifted_serve_tree(tmp_path)
    index = build_module_index([root])
    shape = contract_shapes(index)["serve.protocol.v1"]
    assert "wait" not in shape["ops"] and "hold" in shape["ops"]

    (drift,) = verify_contracts(index)
    assert drift.name == "serve.protocol.v1"

    report = audit_portability(index=index)
    dx009 = [f for f in report.findings if f.rule == "DX009"]
    assert len(dx009) == 1
    assert "serve.protocol.v1" in dx009[0].message
    assert dx009[0].path.endswith("serve/server.py")


def test_absent_source_module_is_drift(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "misc.py").write_text(textwrap.dedent("""
        def nothing():
            return None
    """))
    index = build_module_index([pkg])
    drifts = verify_contracts(index)
    assert {d.name for d in drifts} == {c.name for c in CONTRACTS}
    assert all(d.derived is None for d in drifts)
