"""Tests for the word-level dataflow engine (repro.analysis.dataflow)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    BIT_ONE,
    BIT_TOP,
    BIT_ZERO,
    AnalysisContext,
    IntRange,
    analyze_dataflow,
)
from repro.analysis.dataflow import (
    bits_to_range,
    cache_key,
    normalize_assumptions,
    range_to_bits,
    representable_range,
)
from repro.errors import AnalysisError
from repro.netlist import (
    baugh_wooley_multiplier,
    ccm_multiplier,
    unsigned_array_multiplier,
)


class TestIntRange:
    def test_singleton_and_width(self):
        r = IntRange(5, 5)
        assert r.singleton
        assert 5 in r and 4 not in r
        assert IntRange(0, 255).width == 256

    def test_invalid_rejected(self):
        with pytest.raises(AnalysisError):
            IntRange(3, 2)

    def test_intersect(self):
        assert IntRange(0, 10).intersect(IntRange(5, 20)) == IntRange(5, 10)
        assert IntRange(0, 4).intersect(IntRange(5, 9)) is None


class TestLatticeConversions:
    @given(
        lo=st.integers(min_value=0, max_value=255),
        hi=st.integers(min_value=0, max_value=255),
    )
    def test_range_to_bits_sound_unsigned(self, lo, hi):
        """Every value in the range is consistent with the bit codes."""
        lo, hi = min(lo, hi), max(lo, hi)
        codes = range_to_bits(IntRange(lo, hi), 8, signed=False)
        for v in range(lo, hi + 1):
            for i, c in enumerate(codes):
                bit = (v >> i) & 1
                assert c == BIT_TOP or c == bit

    @given(
        lo=st.integers(min_value=-128, max_value=127),
        hi=st.integers(min_value=-128, max_value=127),
    )
    def test_range_to_bits_sound_signed(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        codes = range_to_bits(IntRange(lo, hi), 8, signed=True)
        for v in range(lo, hi + 1):
            for i, c in enumerate(codes):
                bit = ((v + 256) >> i) & 1 if v < 0 else (v >> i) & 1
                assert c == BIT_TOP or c == bit

    def test_singleton_fully_known(self):
        codes = range_to_bits(IntRange(93, 93), 8, signed=False)
        assert codes == [(93 >> i) & 1 for i in range(8)]
        assert bits_to_range(codes, signed=False) == IntRange(93, 93)

    @given(v=st.integers(min_value=-8, max_value=7))
    def test_signed_singleton_round_trips(self, v):
        codes = range_to_bits(IntRange(v, v), 4, signed=True)
        assert all(c != BIT_TOP for c in codes)
        assert bits_to_range(codes, signed=True) == IntRange(v, v)

    def test_bits_to_range_encloses(self):
        # bit0 known-1, rest unknown: odd values of [1, 15].
        codes = [BIT_ONE, BIT_TOP, BIT_TOP, BIT_TOP]
        rng = bits_to_range(codes, signed=False)
        assert rng.lo <= 1 and rng.hi >= 15

    def test_known_zero_top_bits(self):
        codes = [BIT_TOP, BIT_TOP, BIT_ZERO, BIT_ZERO]
        assert bits_to_range(codes, signed=False) == IntRange(0, 3)


class TestAssumptions:
    def test_unknown_bus_raises(self):
        ctx = AnalysisContext.build(unsigned_array_multiplier(4, 4))
        with pytest.raises(AnalysisError, match="unknown input bus"):
            normalize_assumptions(ctx, {"nope": 3})

    def test_overflow_raises_or_clamps(self):
        ctx = AnalysisContext.build(unsigned_array_multiplier(4, 4))
        with pytest.raises(AnalysisError, match="does not fit"):
            normalize_assumptions(ctx, {"a": (0, 999)})
        clamped = normalize_assumptions(ctx, {"a": (0, 999)}, clamp=True)
        assert clamped["a"] == IntRange(0, 15)

    def test_bool_rejected(self):
        ctx = AnalysisContext.build(unsigned_array_multiplier(4, 4))
        with pytest.raises(AnalysisError, match="must be int"):
            normalize_assumptions(ctx, {"a": True})

    def test_cache_key_canonical(self):
        assert cache_key(None) == ()
        assert cache_key({"b": 3, "a": (0, 7)}) == cache_key(
            {"a": IntRange(0, 7), "b": IntRange(3, 3)}
        )

    def test_representable_range(self):
        assert representable_range(4, False) == IntRange(0, 15)
        assert representable_range(4, True) == IntRange(-8, 7)


class TestDataflowExactness:
    """Singleton assumptions must reproduce the concrete evaluation."""

    @pytest.mark.parametrize("c", [0, 1, 93, 128, 255])
    def test_ccm_products_exact(self, c):
        nl = ccm_multiplier(c, 8)
        cn = nl.compile()
        for x in [0, 1, 77, 128, 255]:
            flow = analyze_dataflow(cn, {"x": x})
            assert flow.constant_value("p") == c * x
            assert flow.output_ranges["p"].singleton

    def test_both_operands_pinned(self):
        cn = unsigned_array_multiplier(8, 8).compile()
        flow = analyze_dataflow(cn, {"a": 201, "b": 37})
        assert flow.constant_value("p") == 201 * 37

    def test_signed_multiplier_pinned(self):
        cn = baugh_wooley_multiplier(6, 6).compile()
        flow = analyze_dataflow(cn, {"a": -23, "b": 17})
        assert flow.bus_range("p") == IntRange(-23 * 17, -23 * 17)

    def test_no_assumptions_gives_representable_output(self):
        cn = unsigned_array_multiplier(4, 4).compile()
        flow = analyze_dataflow(cn)
        rng = flow.output_ranges["p"]
        assert rng.lo == 0 and rng.hi >= 15 * 15


class TestDataflowSoundness:
    """Abstract results must enclose every concrete behaviour."""

    @settings(max_examples=30, deadline=None)
    @given(
        alo=st.integers(min_value=0, max_value=15),
        ahi=st.integers(min_value=0, max_value=15),
        b=st.integers(min_value=0, max_value=15),
    )
    def test_range_assumption_encloses_concrete(self, alo, ahi, b):
        alo, ahi = min(alo, ahi), max(alo, ahi)
        cn = unsigned_array_multiplier(4, 4).compile()
        flow = analyze_dataflow(cn, {"a": (alo, ahi), "b": b})
        rng = flow.bus_range("p")
        codes = flow.bus_codes("p")
        xs = np.arange(alo, ahi + 1)
        products = cn.evaluate_ints(a=xs, b=np.full_like(xs, b))["p"]
        for p in products:
            assert int(p) in rng
            for i, code in enumerate(codes):
                assert code == BIT_TOP or code == (int(p) >> i) & 1

    def test_static_luts_never_toggle(self):
        """Nodes reported static are constant across the assumed set."""
        cn = unsigned_array_multiplier(4, 4).compile()
        flow = analyze_dataflow(cn, {"b": 5})
        static = flow.node_static
        xs = np.arange(16)
        bits = cn.evaluate(
            {
                "a": np.stack(
                    [[(x >> i) & 1 for i in range(4)] for x in xs]
                ).astype(np.uint8),
                "b": np.tile(
                    np.array([[1, 0, 1, 0]], dtype=np.uint8), (16, 1)
                ),
            }
        )
        # Concrete check on the output bus: any static output bit is the
        # same for every a.
        for i, nid in enumerate(cn.output_buses["p"]):
            if static[nid]:
                col = bits["p"][:, i]
                assert np.all(col == col[0])

    def test_iterations_reach_fixed_point_quickly(self):
        cn = ccm_multiplier(93, 8).compile()
        flow = analyze_dataflow(cn, {"x": (0, 100)})
        assert flow.iterations <= 2


class TestDataflowResultApi:
    def test_as_dict_is_jsonable(self):
        import json

        flow = analyze_dataflow(ccm_multiplier(93, 8), {"x": 7})
        blob = json.loads(json.dumps(flow.as_dict()))
        assert blob["netlist"] == "ccm93x8"
        assert blob["n_known_bits"] > 0

    def test_context_memoises(self):
        ctx = AnalysisContext.build(unsigned_array_multiplier(4, 4))
        a = ctx.dataflow({"b": 3})
        b = ctx.dataflow({"b": IntRange(3, 3)})
        assert a is b
        assert ctx.dataflow(None) is ctx.dataflow(None)
