"""Tests for repro.analysis.passes — one trigger and one non-trigger per rule."""

from repro.analysis import REGISTRY, LintConfig, Severity, lint_netlist, rule_table
from repro.netlist.core import TT_AND2, Netlist


def _half_adder():
    """A netlist that fires no rule at all (the non-trigger baseline)."""
    nl = Netlist("ha")
    a = nl.add_input_bus("a", 1)
    b = nl.add_input_bus("b", 1)
    s, c = nl.half_adder(a[0], b[0])
    nl.set_output_bus("s", [s])
    nl.set_output_bus("c", [c])
    return nl


class TestRegistry:
    def test_all_rules_registered(self):
        expected = [f"NL{i:03d}" for i in range(12)] + [
            f"WL{i:03d}" for i in range(1, 5)
        ]
        assert sorted(REGISTRY) == expected

    def test_rule_table_rows(self):
        rows = rule_table()
        assert [r[0] for r in rows] == sorted(REGISTRY)
        assert all(r[2] in ("error", "warning", "info") for r in rows)

    def test_baseline_is_clean(self):
        assert lint_netlist(_half_adder()).clean


class TestNL000InvalidStructure:
    def test_oversized_truth_table(self):
        nl = _half_adder()
        nl._tts[2] = 1 << 4  # the arity-2 XOR holds at most a 4-row table
        rep = lint_netlist(nl)
        assert "NL000" in rep.rule_ids
        assert rep.by_rule("NL000")[0].severity is Severity.ERROR

    def test_self_fanin(self):
        nl = _half_adder()
        nl._fanins[3] = (3, 3)
        assert "NL000" in lint_netlist(nl).rule_ids

    def test_bus_referencing_unknown_node(self):
        nl = _half_adder()
        nl.output_buses["s"] = [99]
        assert "NL000" in lint_netlist(nl).rule_ids

    def test_broken_structure_gates_dag_passes(self):
        # The dead LUT would fire NL002, but the broken DAG must yield
        # NL000 only (structure-gated passes skip instead of crashing).
        nl = _half_adder()
        a = nl.input_buses["a"]
        dead = nl.NOT(a[0])
        nl._fanins[dead] = (dead,)
        rep = lint_netlist(nl)
        assert "NL000" in rep.rule_ids
        assert "NL002" not in rep.rule_ids


class TestNL001Dangling:
    def test_unused_constant(self):
        nl = _half_adder()
        nl.add_const(1)
        rep = lint_netlist(nl)
        assert "NL001" in rep.rule_ids
        assert "constant" in rep.by_rule("NL001")[0].message

    def test_output_constant_not_dangling(self):
        nl = _half_adder()
        nl.output_buses["s"].append(nl.add_const(0))
        assert "NL001" not in lint_netlist(nl).rule_ids


class TestNL002DeadLogic:
    def test_unreachable_lut(self):
        nl = _half_adder()
        a = nl.input_buses["a"]
        dead = nl.NOT(a[0])
        rep = lint_netlist(nl)
        assert rep.by_rule("NL002")[0].nodes == (dead,)
        assert rep.by_rule("NL002")[0].severity is Severity.ERROR

    def test_reachable_logic_not_flagged(self):
        assert "NL002" not in lint_netlist(_half_adder()).rule_ids


class TestNL003DuplicateConst:
    def test_hand_built_duplicate(self):
        nl = _half_adder()
        c1 = nl.add_const(1)
        c2 = nl._add_node(1, 0, (), const=1)  # bypass the builder's dedup
        nl.output_buses["s"] += [c1, c2]
        rep = lint_netlist(nl)
        assert rep.by_rule("NL003")[0].nodes == (c1, c2)
        assert rep.by_rule("NL003")[0].severity is Severity.INFO

    def test_builder_dedup_never_fires(self):
        nl = _half_adder()
        nl.output_buses["s"] += [nl.add_const(1), nl.add_const(1)]
        assert "NL003" not in lint_netlist(nl).rule_ids


class TestNL004ConstantLut:
    def test_always_one_lut(self):
        nl = _half_adder()
        a = nl.input_buses["a"]
        stuck = nl.add_lut(0b11, (a[0],))
        nl.output_buses["s"].append(stuck)
        rep = lint_netlist(nl)
        assert rep.by_rule("NL004")[0].nodes == (stuck,)
        assert "outputs 1" in rep.by_rule("NL004")[0].message

    def test_real_function_not_flagged(self):
        assert "NL004" not in lint_netlist(_half_adder()).rule_ids


class TestNL005IgnoredFanin:
    def test_repeated_driver(self):
        nl = _half_adder()
        a = nl.input_buses["a"]
        folded = nl.AND(a[0], a[0])
        nl.output_buses["s"].append(folded)
        rep = lint_netlist(nl)
        assert any("multiple" in d.message for d in rep.by_rule("NL005"))

    def test_ignored_position(self):
        nl = _half_adder()
        a, b = nl.input_buses["a"], nl.input_buses["b"]
        # tt 0b1100 over (a, b) is just "b": fanin position 0 is ignored.
        buf = nl.add_lut(0b1100, (a[0], b[0]))
        nl.output_buses["s"].append(buf)
        rep = lint_netlist(nl)
        assert any("ignores fanin" in d.message for d in rep.by_rule("NL005"))

    def test_full_dependence_not_flagged(self):
        assert "NL005" not in lint_netlist(_half_adder()).rule_ids


class TestNL006DuplicateLut:
    def test_commuted_duplicate_detected(self):
        nl = _half_adder()
        a, b = nl.input_buses["a"], nl.input_buses["b"]
        x1 = nl.add_lut(TT_AND2, (a[0], b[0]))
        x2 = nl.add_lut(TT_AND2, (b[0], a[0]))  # same function, swapped fanins
        nl.set_output_bus("d", [x1, x2])
        rep = lint_netlist(nl)
        # The new pair duplicates each other *and* the half adder's carry.
        assert any(set(d.nodes) >= {x1, x2} for d in rep.by_rule("NL006"))

    def test_shared_lut_not_flagged(self):
        nl = _half_adder()
        a, b = nl.input_buses["a"], nl.input_buses["b"]
        x1 = nl.add_lut_shared(0b1110, (a[0], b[0]))
        x2 = nl.add_lut_shared(0b1110, (a[0], b[0]))
        assert x1 == x2
        nl.set_output_bus("d", [x1])
        assert "NL006" not in lint_netlist(nl).rule_ids


class TestNL007OutputOverlap:
    def test_cross_bus_sharing(self):
        nl = Netlist("t")
        a = nl.add_input_bus("a", 1)
        b = nl.add_input_bus("b", 1)
        s = nl.XOR(a[0], b[0])
        nl.set_output_bus("p", [s])
        nl.set_output_bus("q", [s])
        rep = lint_netlist(nl)
        assert rep.by_rule("NL007")[0].severity is Severity.ERROR
        assert rep.by_rule("NL007")[0].nodes == (s,)

    def test_within_bus_repetition_allowed(self):
        # Post-CSE netlists legitimately tie one net to several bit
        # positions of one word (e.g. ccm(3, 1) has p = [n, n]).
        nl = Netlist("t")
        a = nl.add_input_bus("a", 1)
        b = nl.add_input_bus("b", 1)
        s = nl.XOR(a[0], b[0])
        nl.set_output_bus("p", [s, s])
        assert "NL007" not in lint_netlist(nl).rule_ids

    def test_shared_constant_rail_exempt(self):
        nl = _half_adder()
        zero = nl.add_const(0)
        nl.output_buses["s"].append(zero)
        nl.output_buses["c"].append(zero)
        assert "NL007" not in lint_netlist(nl).rule_ids


class TestNL008OutputWidth:
    def test_no_outputs(self):
        nl = Netlist("t")
        nl.add_input_bus("a", 1)
        rep = lint_netlist(nl)
        assert rep.by_rule("NL008")[0].severity is Severity.ERROR

    def test_empty_bus(self):
        nl = _half_adder()
        nl.set_output_bus("empty", [])
        rep = lint_netlist(nl)
        assert any(d.bus == "empty" for d in rep.by_rule("NL008"))


class TestNL009FanoutBudget:
    def _wide_fanout(self):
        nl = Netlist("t")
        a = nl.add_input_bus("a", 1)
        b = nl.add_input_bus("b", 1)
        outs = [nl.AND(a[0], b[0]), nl.OR(a[0], b[0]), nl.XOR(a[0], b[0])]
        nl.set_output_bus("p", outs)
        return nl

    def test_over_budget(self):
        rep = lint_netlist(self._wide_fanout(), LintConfig(max_fanout=2))
        assert "NL009" in rep.rule_ids

    def test_default_budget_not_hit(self):
        assert "NL009" not in lint_netlist(self._wide_fanout()).rule_ids

    def test_constants_exempt(self):
        nl = Netlist("t")
        a = nl.add_input_bus("a", 3)
        one = nl.add_const(1)  # fanout 3, but tied-off rails are free
        outs = [nl.XOR(a[0], one), nl.AND(a[1], one), nl.OR(a[2], one)]
        nl.set_output_bus("p", outs)
        assert "NL009" not in lint_netlist(nl, LintConfig(max_fanout=2)).rule_ids


class TestNL010DepthBudget:
    def _chain(self):
        nl = Netlist("t")
        a = nl.add_input_bus("a", 1)
        x = nl.NOT(a[0])
        y = nl.XOR(x, a[0])
        nl.set_output_bus("p", [y])
        return nl

    def test_over_budget(self):
        rep = lint_netlist(self._chain(), LintConfig(max_depth=1))
        assert "depth 2 exceeds budget 1" in rep.by_rule("NL010")[0].message

    def test_default_budget_not_hit(self):
        assert "NL010" not in lint_netlist(self._chain()).rule_ids


class TestNL011InputCoverage:
    def test_unused_input_bit(self):
        nl = Netlist("t")
        a = nl.add_input_bus("a", 2)
        nl.set_output_bus("p", [nl.NOT(a[0])])
        rep = lint_netlist(nl)
        assert "bit(s) [1]" in rep.by_rule("NL011")[0].message
        assert rep.by_rule("NL011")[0].bus == "a"

    def test_covered_inputs_not_flagged(self):
        assert "NL011" not in lint_netlist(_half_adder()).rule_ids
