"""Tests for repro.analysis.diagnostics — Severity, Diagnostic, LintReport."""

import json

import pytest

from repro.analysis import Diagnostic, LintReport, Severity
from repro.errors import AnalysisError


def _diag(rule="NL002", severity=Severity.ERROR, nodes=(3,), bus=None):
    return Diagnostic(
        rule=rule,
        name="dead-logic",
        severity=severity,
        message="LUT node 3 cannot reach any output bus",
        nodes=nodes,
        bus=bus,
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_parse_names_case_insensitive(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("Warning") is Severity.WARNING
        assert Severity.parse(Severity.INFO) is Severity.INFO

    def test_parse_unknown_rejected(self):
        with pytest.raises(AnalysisError):
            Severity.parse("fatal")

    def test_str_is_lowercase_name(self):
        assert str(Severity.ERROR) == "error"


class TestDiagnostic:
    def test_format_mentions_rule_and_nodes(self):
        line = _diag().format()
        assert "NL002" in line
        assert "[dead-logic]" in line
        assert line.startswith("error")
        assert "nodes 3" in line

    def test_format_truncates_long_node_lists(self):
        line = _diag(nodes=tuple(range(20))).format()
        assert "+12 more" in line

    def test_format_includes_bus(self):
        assert "(bus 'p')" in _diag(bus="p").format()

    def test_to_dict_omits_empty_anchors(self):
        d = _diag(nodes=(), bus=None).to_dict()
        assert "nodes" not in d
        assert "bus" not in d
        assert d["severity"] == "error"


class TestLintReport:
    def _report(self):
        diags = (
            _diag(),
            _diag(rule="NL001", severity=Severity.WARNING, nodes=(5,)),
            _diag(rule="NL003", severity=Severity.INFO, nodes=(1, 2)),
        )
        return LintReport(netlist="t", n_nodes=8, diagnostics=diags)

    def test_severity_queries(self):
        rep = self._report()
        assert len(rep.errors) == 1
        assert len(rep.warnings) == 1
        assert len(rep.infos) == 1
        assert rep.max_severity is Severity.ERROR

    def test_by_rule_and_rule_ids(self):
        rep = self._report()
        assert rep.rule_ids == ("NL001", "NL002", "NL003")
        assert len(rep.by_rule("NL002")) == 1
        assert rep.by_rule("NL009") == ()

    def test_ok_thresholds(self):
        rep = self._report()
        assert not rep.ok()  # default threshold is ERROR
        assert not rep.ok(Severity.WARNING)
        warning_only = LintReport(
            netlist="t", n_nodes=8, diagnostics=rep.warnings + rep.infos
        )
        assert warning_only.ok()
        assert not warning_only.ok(Severity.WARNING)

    def test_clean_report(self):
        rep = LintReport(netlist="t", n_nodes=4)
        assert rep.clean
        assert rep.ok(Severity.INFO)
        assert rep.max_severity is None

    def test_summary_counts(self):
        assert "1 error(s), 1 warning(s), 1 info(s)" in self._report().summary()

    def test_to_text_filters_by_severity(self):
        rep = self._report()
        assert "NL003" in rep.to_text()
        assert "NL003" not in rep.to_text(min_severity=Severity.WARNING)

    def test_to_json_roundtrips(self):
        data = json.loads(self._report().to_json())
        assert data["netlist"] == "t"
        assert data["counts"] == {"error": 1, "warning": 1, "info": 1}
        assert [d["rule"] for d in data["diagnostics"]] == ["NL002", "NL001", "NL003"]
