"""Tests for the word-level WL0xx lint rules."""

from __future__ import annotations

import pytest

from repro.analysis import Severity, lint_netlist
from repro.errors import LintError
from repro.netlist import (
    Netlist,
    baugh_wooley_multiplier,
    ccm_multiplier,
    mac_block,
    sign_magnitude_multiplier,
    unsigned_array_multiplier,
    wallace_tree_multiplier,
)


def _ids(report):
    return {d.rule for d in report.diagnostics}


class TestWL001BusOverflow:
    def test_overflowing_assumption_fires(self):
        nl = unsigned_array_multiplier(4, 4)
        report = lint_netlist(nl, assumptions={"b": (0, 99)})
        assert "WL001" in _ids(report)
        assert not report.ok(Severity.ERROR)

    def test_unknown_bus_fires(self):
        nl = unsigned_array_multiplier(4, 4)
        report = lint_netlist(nl, assumptions={"zz": 1})
        assert "WL001" in _ids(report)

    def test_signed_boundary_respected(self):
        nl = baugh_wooley_multiplier(4, 4)
        ok = lint_netlist(nl, assumptions={"a": (-8, 7)})
        assert "WL001" not in _ids(ok)
        bad = lint_netlist(nl, assumptions={"a": (-9, 0)})
        assert "WL001" in _ids(bad)

    def test_valid_assumptions_silent(self):
        nl = unsigned_array_multiplier(4, 4)
        report = lint_netlist(nl, assumptions={"a": (0, 15), "b": 7})
        assert "WL001" not in _ids(report)


class TestWL002DeadOutputBits:
    def test_lut_driven_constant_bit_fires(self):
        nl = Netlist("dead-bit")
        a = nl.add_input_bus("a", 2)
        # AND with a constant-0 net is 0 for every input but LUT-driven.
        zero = nl.add_const(0)
        dead = nl.AND(a[0], zero)
        live = nl.AND(a[0], a[1])
        nl.set_output_bus("p", [live, dead])
        report = lint_netlist(nl)
        assert "WL002" in _ids(report)
        [diag] = [d for d in report.diagnostics if d.rule == "WL002"]
        assert "stuck" in diag.message

    def test_const_padding_exempt(self):
        # Generators pad with explicit const nodes; that must stay clean.
        nl = unsigned_array_multiplier(1, 2)
        report = lint_netlist(nl)
        assert "WL002" not in _ids(report)

    @pytest.mark.parametrize(
        "nl",
        [
            unsigned_array_multiplier(8, 8),
            baugh_wooley_multiplier(8, 8),
            sign_magnitude_multiplier(6, 6),
            wallace_tree_multiplier(8, 8),
            ccm_multiplier(93, 8),
            mac_block(4, 4),
        ],
        ids=lambda nl: nl.name,
    )
    def test_generators_stay_clean(self, nl):
        report = lint_netlist(nl)
        assert report.ok(Severity.WARNING), report.to_text()


class TestWL003StaticUnderAssumption:
    def test_pinned_multiplicand_reports_frozen_cone(self):
        nl = unsigned_array_multiplier(4, 4)
        report = lint_netlist(nl, assumptions={"b": 5})
        [diag] = [d for d in report.diagnostics if d.rule == "WL003"]
        assert diag.severity is Severity.INFO
        assert "static under" in diag.message

    def test_silent_without_assumptions(self):
        report = lint_netlist(unsigned_array_multiplier(4, 4))
        assert "WL003" not in _ids(report)

    def test_silent_when_assumptions_invalid(self):
        report = lint_netlist(
            unsigned_array_multiplier(4, 4), assumptions={"b": (0, 99)}
        )
        assert "WL003" not in _ids(report)
        assert "WL001" in _ids(report)


class TestWL004CcmContradiction:
    def test_correct_ccm_silent(self):
        report = lint_netlist(ccm_multiplier(93, 8))
        assert "WL004" not in _ids(report)

    def test_lying_coefficient_fires(self):
        nl = ccm_multiplier(93, 8)
        nl.attrs["coefficient"] = 94  # logic still computes 93*x
        report = lint_netlist(nl)
        assert "WL004" in _ids(report)
        assert not report.ok(Severity.ERROR)

    def test_missing_coefficient_fires(self):
        nl = ccm_multiplier(93, 8)
        del nl.attrs["coefficient"]
        report = lint_netlist(nl)
        assert "WL004" in _ids(report)

    def test_missing_bus_fires(self):
        nl = ccm_multiplier(93, 8)
        nl.attrs["data_bus"] = "nope"
        report = lint_netlist(nl)
        assert "WL004" in _ids(report)

    def test_non_ccm_exempt(self):
        report = lint_netlist(unsigned_array_multiplier(4, 4))
        assert "WL004" not in _ids(report)

    def test_gate_raises_on_contradiction(self):
        from repro.analysis import check_netlist

        nl = ccm_multiplier(93, 8)
        nl.attrs["coefficient"] = 92
        with pytest.raises(LintError, match="WL004"):
            check_netlist(nl)
