"""The rule catalogue in docs/static_analysis.md is generated; keep it so."""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis import REGISTRY, rule_table_markdown

DOC = Path(__file__).resolve().parents[2] / "docs" / "static_analysis.md"

BEGIN = "<!-- rule-table:begin"
END = "<!-- rule-table:end -->"


def _doc_table() -> str:
    text = DOC.read_text()
    assert BEGIN in text and END in text, "rule-table markers missing"
    start = text.index("\n", text.index(BEGIN)) + 1
    return text[start : text.index(END)].strip()


def test_doc_table_matches_registry():
    assert _doc_table() == rule_table_markdown().strip(), (
        "docs/static_analysis.md rule table is stale; regenerate the "
        "block between the rule-table markers with "
        "repro.analysis.rule_table_markdown()"
    )


def test_every_rule_documented_exactly_once():
    table = _doc_table()
    for rule_id in REGISTRY:
        assert len(re.findall(rf"\| {rule_id} \|", table)) == 1


def test_doc_mentions_wl_layer():
    text = DOC.read_text()
    for needle in (
        "analyze_dataflow",
        "prove_multiplier",
        "sensitized_sta",
        "agreement_report",
        "from_static_profile",
    ):
        assert needle in text, f"docs/static_analysis.md lost {needle}"
