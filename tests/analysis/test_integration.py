"""Integration tests: lint gates in the synthesis flow and generator factory,
plus property tests that every built-in generator emits lint-clean netlists."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import LintWarning, lint_netlist
from repro.config import analysis_settings
from repro.errors import LintError
from repro.netlist.ccm import ccm_multiplier
from repro.netlist.core import Netlist
from repro.netlist.generators import GENERATORS, generate, register_generator
from repro.netlist.mac import mac_block
from repro.netlist.multipliers import (
    baugh_wooley_multiplier,
    sign_magnitude_multiplier,
    unsigned_array_multiplier,
)
from repro.netlist.wallace import wallace_tree_multiplier


def _with_dead_lut():
    nl = unsigned_array_multiplier(4, 4)
    nl.AND(nl.input_buses["a"][0], nl.input_buses["b"][0])  # -> NL002
    return nl


def _with_overlapping_buses():
    nl = Netlist("overlap")
    a = nl.add_input_bus("a", 1)
    b = nl.add_input_bus("b", 1)
    s = nl.XOR(a[0], b[0])
    nl.set_output_bus("p", [s])
    nl.set_output_bus("q", [s])  # -> NL007
    return nl


class TestSynthesisFlowGate:
    def test_dead_lut_refused(self, flow):
        with pytest.raises(LintError, match="synthesis flow") as exc_info:
            flow.run(_with_dead_lut())
        assert "NL002" in exc_info.value.report.rule_ids

    def test_overlapping_buses_refused(self, flow):
        with pytest.raises(LintError) as exc_info:
            flow.run(_with_overlapping_buses())
        assert "NL007" in exc_info.value.report.rule_ids

    def test_lint_false_skips_gate(self, flow):
        placed = flow.run(_with_dead_lut(), lint=False)
        assert placed.netlist.n_luts > 0

    def test_settings_disable_gate(self, flow):
        with analysis_settings(lint_synthesis=False):
            placed = flow.run(_with_dead_lut())
        assert placed.netlist.n_luts > 0

    def test_warnings_surface_but_pass(self, flow):
        nl = Netlist("warn")
        a = nl.add_input_bus("a", 2)
        nl.set_output_bus("p", [nl.NOT(a[0])])  # a[1] unused -> NL011
        with pytest.warns(LintWarning, match="NL011|warning"):
            placed = flow.run(nl)
        assert placed.netlist.n_luts == 1

    def test_clean_netlist_passes(self, flow):
        placed = flow.run(unsigned_array_multiplier(4, 4))
        assert placed.netlist.n_luts > 0


class TestGeneratorGate:
    def test_dirty_generator_refused_when_enabled(self):
        register_generator("lint-dirty-test", lambda: _with_dead_lut())
        try:
            with analysis_settings(lint_generated=True):
                with pytest.raises(LintError, match="lint-dirty-test"):
                    generate("lint-dirty-test")
            # Off by default: the same generator passes through untouched.
            assert generate("lint-dirty-test").n_nodes > 0
        finally:
            GENERATORS.pop("lint-dirty-test")

    def test_clean_generator_passes_when_enabled(self):
        with analysis_settings(lint_generated=True):
            nl = generate("ccm", 93, 8)
        assert nl.output_buses["p"]


class TestGeneratorsLintClean:
    """The paper's designs-under-test must carry no lint findings at all."""

    @settings(max_examples=30, deadline=None)
    @given(wa=st.integers(1, 6), wb=st.integers(1, 6))
    def test_unsigned_array(self, wa, wb):
        assert lint_netlist(unsigned_array_multiplier(wa, wb)).clean

    @settings(max_examples=30, deadline=None)
    @given(wa=st.integers(2, 6), wb=st.integers(2, 6))
    def test_baugh_wooley(self, wa, wb):
        assert lint_netlist(baugh_wooley_multiplier(wa, wb)).clean

    @settings(max_examples=30, deadline=None)
    @given(wa=st.integers(1, 6), wb=st.integers(1, 6))
    def test_sign_magnitude(self, wa, wb):
        assert lint_netlist(sign_magnitude_multiplier(wa, wb)).clean

    @settings(max_examples=30, deadline=None)
    @given(wa=st.integers(1, 6), wb=st.integers(1, 6))
    def test_wallace_tree(self, wa, wb):
        assert lint_netlist(wallace_tree_multiplier(wa, wb)).clean

    @settings(max_examples=20, deadline=None)
    @given(w_data=st.integers(1, 6), w_coeff=st.integers(1, 5))
    def test_mac(self, w_data, w_coeff):
        assert lint_netlist(mac_block(w_data, w_coeff)).clean

    @settings(max_examples=60, deadline=None)
    @given(coefficient=st.integers(1, 300), w_in=st.integers(1, 8))
    def test_ccm(self, coefficient, w_in):
        assert lint_netlist(ccm_multiplier(coefficient, w_in)).clean

    @settings(max_examples=8, deadline=None)
    @given(w_in=st.integers(1, 8))
    def test_ccm_zero_coefficient_flags_only_coverage(self, w_in):
        # coefficient 0 drops all input logic by design: NL011 and nothing else.
        rep = lint_netlist(ccm_multiplier(0, w_in))
        assert rep.rule_ids == ("NL011",)
