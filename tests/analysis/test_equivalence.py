"""Equivalence-proof tests (acceptance: 8x8 variants, >=8 multiplicands)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import prove_multiplier
from repro.errors import AnalysisError, ProofError
from repro.netlist import (
    Netlist,
    baugh_wooley_multiplier,
    ccm_multiplier,
    mac_block,
    sign_magnitude_multiplier,
    unsigned_array_multiplier,
    wallace_tree_multiplier,
)

#: The acceptance grid: eight distinct multiplicands spanning the 8-bit
#: range (zero, one, low/high popcount, boundary values).
MULTIPLICANDS = [0, 1, 37, 93, 128, 170, 222, 255]


class TestExhaustiveAcceptance:
    @pytest.mark.parametrize("m", MULTIPLICANDS)
    def test_wallace_8x8(self, m):
        cert = prove_multiplier(wallace_tree_multiplier(8, 8), m=m)
        assert cert.passed and cert.method == "exhaustive"
        assert cert.n_vectors == 256
        assert cert.multiplicand == m
        cert.require()

    @pytest.mark.parametrize("m", MULTIPLICANDS)
    def test_array_8x8(self, m):
        cert = prove_multiplier(unsigned_array_multiplier(8, 8), m=m)
        assert cert.passed and cert.method == "exhaustive"
        assert cert.n_vectors == 256

    @pytest.mark.parametrize("m", [-128, -93, -1, 0, 1, 37, 93, 127])
    def test_baugh_wooley_8x8(self, m):
        cert = prove_multiplier(baugh_wooley_multiplier(8, 8), m=m)
        assert cert.passed and cert.method == "exhaustive"
        assert cert.signed
        assert cert.n_vectors == 256

    @pytest.mark.parametrize("c", MULTIPLICANDS)
    def test_ccm_8bit(self, c):
        cert = prove_multiplier(ccm_multiplier(c, 8))
        assert cert.passed and cert.method == "exhaustive"
        assert cert.kind == "ccm"
        assert cert.n_vectors == 256

    def test_full_space_small_multiplier(self):
        cert = prove_multiplier(unsigned_array_multiplier(4, 4))
        assert cert.passed and cert.method == "exhaustive"
        assert cert.n_vectors == 256
        assert cert.multiplicand is None

    def test_sign_magnitude(self):
        cert = prove_multiplier(sign_magnitude_multiplier(6, 6))
        assert cert.passed and cert.method == "exhaustive"
        assert cert.kind == "sign-magnitude"
        assert cert.n_vectors == 1 << 14


class TestStratified:
    def test_mac_stratified(self):
        cert = prove_multiplier(mac_block(8, 8), seed=3)
        assert cert.passed
        assert cert.method == "stratified"
        assert cert.kind == "mac"
        assert cert.seed == 3

    def test_pinned_mac_exhaustive(self):
        # Fixing b leaves a (8) + acc (17) = 25 free bits: still
        # stratified with the default limit, exhaustive when raised.
        cert = prove_multiplier(mac_block(4, 4), m=9, exhaustive_limit=16)
        assert cert.passed
        assert cert.method == "exhaustive"


class TestBrokenNetlists:
    def _broken_multiplier(self):
        """Claims the a/b->p multiplier interface but computes a & b."""
        nl = Netlist("broken2x2")
        a = nl.add_input_bus("a", 2)
        b = nl.add_input_bus("b", 2)
        bits = [nl.AND(a[i], b[i]) for i in range(2)]
        bits += [nl.add_const(0), nl.add_const(0)]
        nl.set_output_bus("p", bits)
        return nl

    def test_counterexample_reported(self):
        cert = prove_multiplier(self._broken_multiplier())
        assert not cert.passed
        cex = cert.counterexample
        assert cex is not None
        a, b = int(cex["a"]), int(cex["b"])
        assert int(cex["want"]) == a * b
        assert int(cex["got"]) != a * b

    def test_require_raises_with_certificate(self):
        cert = prove_multiplier(self._broken_multiplier())
        with pytest.raises(ProofError, match="counterexample") as ei:
            cert.require()
        assert ei.value.certificate is cert

    def test_ccm_coefficient_conflict_rejected(self):
        with pytest.raises(AnalysisError, match="coefficient"):
            prove_multiplier(ccm_multiplier(93, 8), m=94)

    def test_ccm_matching_m_accepted(self):
        assert prove_multiplier(ccm_multiplier(93, 8), m=93).passed

    def test_unrepresentable_m_rejected(self):
        with pytest.raises(AnalysisError):
            prove_multiplier(unsigned_array_multiplier(4, 4), m=16)
        with pytest.raises(AnalysisError):
            prove_multiplier(baugh_wooley_multiplier(4, 4), m=-9)

    def test_unrecognised_interface_rejected(self):
        nl = Netlist("mystery")
        x = nl.add_input_bus("u", 2)
        nl.set_output_bus("v", [nl.NOT(x[0]), nl.NOT(x[1])])
        with pytest.raises(AnalysisError):
            prove_multiplier(nl)


class TestCertificateData:
    def test_as_dict_jsonable(self):
        import json

        cert = prove_multiplier(ccm_multiplier(93, 8))
        blob = json.loads(json.dumps(cert.as_dict()))
        assert blob["passed"] is True
        assert blob["kind"] == "ccm"
        assert blob["widths"]["x"] == 8

    def test_stratified_deterministic(self):
        c1 = prove_multiplier(mac_block(8, 8), seed=7)
        c2 = prove_multiplier(mac_block(8, 8), seed=7)
        assert c1.n_vectors == c2.n_vectors
        assert c1.passed and c2.passed
