"""Tests for repro.analysis.linter — LintConfig and the gate helpers."""

import pytest

from repro.analysis import (
    LintConfig,
    LintWarning,
    Severity,
    check_netlist,
    lint_netlist,
)
from repro.config import analysis_settings
from repro.errors import AnalysisError, LintError
from repro.netlist.core import Netlist
from repro.netlist.multipliers import unsigned_array_multiplier


def _dead_lut_netlist():
    nl = Netlist("dead")
    a = nl.add_input_bus("a", 1)
    b = nl.add_input_bus("b", 1)
    nl.set_output_bus("p", [nl.XOR(a[0], b[0])])
    nl.AND(a[0], b[0])  # dead: drives nothing, unreachable -> NL002 + NL001
    return nl


def _warning_only_netlist():
    nl = Netlist("warn")
    a = nl.add_input_bus("a", 2)
    nl.set_output_bus("p", [nl.NOT(a[0])])  # a[1] unused -> NL011 warning
    return nl


class TestLintConfig:
    def test_unknown_disabled_rule_rejected(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            LintConfig(disabled=frozenset({"NL999"}))

    def test_unknown_override_rule_rejected(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            LintConfig(severity_overrides={"NOPE": Severity.ERROR})

    @pytest.mark.parametrize("kwargs", [{"max_fanout": 0}, {"max_depth": -3}])
    def test_budgets_must_be_positive(self, kwargs):
        with pytest.raises(AnalysisError, match="budgets"):
            LintConfig(**kwargs)

    def test_build_parses_severity_names(self):
        cfg = LintConfig.build(
            severity_overrides={"NL006": "error"}, fail_on="warning"
        )
        assert cfg.fail_on is Severity.WARNING
        assert cfg.severity_for("NL006") is Severity.ERROR
        assert cfg.severity_for("NL002") is Severity.ERROR  # default kept

    def test_build_reads_budget_settings(self):
        with analysis_settings(max_fanout=7, max_depth=9):
            cfg = LintConfig.build()
        assert (cfg.max_fanout, cfg.max_depth) == (7, 9)

    def test_from_settings_overrides_win(self):
        with analysis_settings(max_fanout=7):
            cfg = LintConfig.from_settings(max_fanout=11)
        assert cfg.max_fanout == 11


class TestLintNetlist:
    def test_disabled_rules_skipped(self):
        rep = lint_netlist(
            _dead_lut_netlist(), LintConfig(disabled=frozenset({"NL001", "NL002"}))
        )
        assert rep.clean

    def test_severity_override_applied(self):
        cfg = LintConfig(severity_overrides={"NL011": Severity.ERROR})
        rep = lint_netlist(_warning_only_netlist(), cfg)
        assert rep.by_rule("NL011")[0].severity is Severity.ERROR
        assert not rep.ok()

    def test_diagnostics_sorted_most_severe_first(self):
        rep = lint_netlist(_dead_lut_netlist())
        sevs = [d.severity for d in rep.diagnostics]
        assert sevs == sorted(sevs, reverse=True)
        assert rep.diagnostics[0].rule == "NL002"

    def test_builder_and_compiled_forms_agree(self):
        nl = _warning_only_netlist()
        a = lint_netlist(nl)
        b = lint_netlist(nl.compile())
        assert a.rule_ids == b.rule_ids
        assert len(a.diagnostics) == len(b.diagnostics)
        assert a.n_nodes == b.n_nodes

    def test_compiled_multiplier_clean(self):
        assert lint_netlist(unsigned_array_multiplier(4, 4).compile()).clean


class TestCheckNetlist:
    def test_raises_with_report_attached(self):
        with pytest.raises(LintError, match="NL002") as exc_info:
            check_netlist(_dead_lut_netlist(), context="unit test")
        assert "unit test" in str(exc_info.value)
        assert "NL002" in exc_info.value.report.rule_ids

    def test_warns_below_threshold(self):
        with pytest.warns(LintWarning, match="1 warning"):
            rep = check_netlist(_warning_only_netlist())
        assert rep.ok()

    def test_clean_netlist_silent(self, recwarn):
        rep = check_netlist(unsigned_array_multiplier(3, 3))
        assert rep.clean
        assert not [w for w in recwarn if issubclass(w.category, LintWarning)]

    def test_fail_on_warning_promotes(self):
        cfg = LintConfig.build(fail_on="warning")
        with pytest.raises(LintError):
            check_netlist(_warning_only_netlist(), cfg)
