"""Invariants of the DT rule registry and the effect catalogue."""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    ALLOWANCES,
    DT_REGISTRY,
    EFFECT_CATALOG,
    dt_rule_table,
    dt_rule_table_markdown,
    effect_catalogue_markdown,
    rule_for_effect,
)
from repro.analysis.sanitizer.rules import PRAGMA_RULE_ID


def test_rule_ids_are_stable_and_wellformed():
    assert PRAGMA_RULE_ID in DT_REGISTRY
    for rule_id, rule in DT_REGISTRY.items():
        assert rule.rule_id == rule_id
        assert rule_id.startswith("DT") and len(rule_id) == 5
        assert rule.name and rule.description


def test_rules_cover_catalogue_bijectively():
    # Every catalogued effect has exactly one policing rule, and every
    # rule except the DT000 meta-rule polices a catalogued effect.
    effects = {spec.effect for spec in EFFECT_CATALOG}
    rule_effects = [r.effect for r in DT_REGISTRY.values() if r.effect]
    assert sorted(rule_effects) == sorted(effects)
    for spec in EFFECT_CATALOG:
        assert rule_for_effect(spec.effect).effect == spec.effect


def test_rule_for_unknown_effect_raises():
    with pytest.raises(KeyError):
        rule_for_effect("no.such.effect")


def test_catalogue_scopes_are_valid():
    assert {spec.scope for spec in EFFECT_CATALOG} <= {
        "reachable",
        "shared_disk",
        "everywhere",
    }


def test_allowances_reference_catalogued_effects_with_reasons():
    effects = {spec.effect for spec in EFFECT_CATALOG}
    for allow in ALLOWANCES:
        assert allow.effect in effects
        assert allow.reason and len(allow.reason) > 20, (
            f"allowance for {allow.module} needs a real justification"
        )


def test_rule_table_sorted_and_complete():
    rows = dt_rule_table()
    assert [r[0] for r in rows] == sorted(r[0] for r in rows)
    assert {r[0] for r in rows} == set(DT_REGISTRY)


def test_markdown_renders_every_rule_and_allowance():
    table = dt_rule_table_markdown()
    for rule_id in DT_REGISTRY:
        assert f"| {rule_id} |" in table
    catalogue = effect_catalogue_markdown()
    for spec in EFFECT_CATALOG:
        assert f"`{spec.effect}`" in catalogue
    for allow in ALLOWANCES:
        assert f"`{allow.module}`" in catalogue
