"""The library's own source must satisfy its own determinism policy.

This is the in-tree twin of the ``scripts/check.sh`` gate: ``repro audit
src/repro`` reports zero unsuppressed findings, and every pragma that
does suppress something carries a justification (DT000 enforces the
latter by construction — an unjustified pragma is itself a finding).
"""

from __future__ import annotations

from functools import cache
from pathlib import Path

from repro.analysis.sanitizer import ENTRY_POINTS, audit_paths

SRC = Path(__file__).resolve().parents[3] / "src" / "repro"


@cache
def _report():
    return audit_paths([SRC])


def test_library_source_is_audit_clean():
    report = _report()
    assert report.clean, "\n" + report.to_text()


def test_every_suppression_is_justified():
    report = _report()
    assert report.suppressions, (
        "expected the known pragma suppressions (pll.py DT004, fsm.py "
        "DT005, sanitize.py DT006) to be recorded, not silently dropped"
    )
    for supp in report.suppressions:
        assert supp.reason and len(supp.reason) > 10, (
            f"{supp.path}:{supp.lineno} pragma lacks a real justification"
        )


def test_entry_points_all_resolve():
    # A renamed shard entry point must fail loudly here, not silently
    # shrink the reachable set to nothing.
    report = _report()
    assert report.entry_points == ENTRY_POINTS
    assert report.n_reachable >= len(ENTRY_POINTS), (
        f"only {report.n_reachable} reachable functions from "
        f"{len(ENTRY_POINTS)} entry points: an entry point no longer resolves"
    )


def test_audit_scales_sanely():
    report = _report()
    assert report.n_files > 80
    assert report.n_functions > 500
