"""Pragma scanning in multi-line/decorated contexts, and DX-aware DT000.

Pins the anchoring rules precisely: a pragma suppresses only from the
hazard's own line or the comment-only line directly above it — trailing
a multi-line call's closing paren or riding a decorator does nothing.
DT000 (pragma hygiene) now validates rule IDs against the combined
DT + DX registry: naming a real DX rule is well-formed, naming an
unknown one is a finding in either family's spelling.
"""

from __future__ import annotations

from repro.analysis.portability import audit_portability

from .test_auditor import rules_fired, run_audit


def test_pragma_on_hazard_line_inside_multiline_call(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                return sum((
                    random.gauss(0.0, 1.0),  # repro: allow[DT001] -- fixture: inner line of a multi-line call
                    1.0,
                ))
            """
        },
        ["pkg.shard:run"],
    )
    assert report.clean
    (supp,) = report.suppressions
    assert supp.rule == "DT001"


def test_pragma_on_closing_paren_of_multiline_call_does_not_suppress(tmp_path):
    # The occurrence anchors to the call's first line; a pragma trailing
    # the closing paren is on the wrong line and must not suppress.
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                return random.gauss(
                    0.0,
                    1.0,
                )  # repro: allow[DT001] -- fixture: anchored to the wrong line
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT001"}
    assert not report.suppressions


def test_pragma_comment_line_above_hazard_in_decorated_function(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import functools
            import random

            @functools.lru_cache(maxsize=None)
            def run():
                # repro: allow[DT001] -- fixture: hazard inside a decorated function
                return random.random()
            """
        },
        ["pkg.shard:run"],
    )
    assert report.clean
    assert len(report.suppressions) == 1


def test_pragma_on_decorator_line_does_not_reach_the_body(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import functools
            import random

            @functools.lru_cache(maxsize=None)  # repro: allow[DT001] -- fixture: wrong anchor
            def run():
                return random.random()
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT001"}
    assert not report.suppressions


# ----------------------------------------------------------------------
# DT000 over the combined DT + DX ID space.


def test_pragma_naming_known_dx_rule_is_well_formed(tmp_path):
    # DT000 must accept DX IDs: the pragma is for the portability pass,
    # so the DT family leaves it alone (and does not suppress with it).
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                return random.random()  # repro: allow[DX007] -- fixture: names a real DX rule
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT001"}  # no DT000, no suppression


def test_pragma_naming_unknown_dx_rule_is_dt000(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            def run():
                return 1  # repro: allow[DX999] -- no such portability rule
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT000"}
    assert "DX999" in report.findings[0].message


def test_pragma_with_foreign_family_prefix_is_dt000(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            def run():
                return 1  # repro: allow[NL001] -- wrong family for source audits
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT000"}


def test_one_pragma_suppresses_across_both_families(tmp_path):
    # A single `allow[DT001,DX007]` line satisfies each family's pass
    # for its own rule on that line.
    files = {
        "shard.py": """
        import random
        import socket

        def run():
            return (random.random(), socket.gethostname())  # repro: allow[DT001,DX007] -- fixture: one line, two families
        """
    }
    dt_report = run_audit(tmp_path, files, ["pkg.shard:run"])
    assert dt_report.clean
    assert [s.rule for s in dt_report.suppressions] == ["DT001"]

    dx_report = audit_portability(
        [tmp_path / "pkg"],
        boundary_types=(),
        cache_contracts=(),
        entry_points=("pkg.shard:run",),
        allowances=(),
        check_contracts=False,
    )
    assert dx_report.clean
    assert [s.rule for s in dx_report.suppressions] == ["DX007"]
