"""The DT tables in docs/static_analysis.md are generated; keep it so."""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.sanitizer import (
    DT_REGISTRY,
    dt_rule_table_markdown,
    effect_catalogue_markdown,
)

DOC = Path(__file__).resolve().parents[3] / "docs" / "static_analysis.md"


def _generated_block(marker: str) -> str:
    text = DOC.read_text()
    begin, end = f"<!-- {marker}:begin", f"<!-- {marker}:end -->"
    assert begin in text and end in text, f"{marker} markers missing"
    start = text.index("\n", text.index(begin)) + 1
    return text[start : text.index(end)].strip()


def test_dt_rule_table_matches_registry():
    assert _generated_block("dt-rule-table") == dt_rule_table_markdown().strip(), (
        "docs/static_analysis.md DT rule table is stale; regenerate the "
        "block between the dt-rule-table markers with "
        "repro.analysis.sanitizer.dt_rule_table_markdown()"
    )


def test_effect_catalogue_matches_spec():
    assert _generated_block("effect-catalogue") == effect_catalogue_markdown().strip(), (
        "docs/static_analysis.md effect catalogue is stale; regenerate the "
        "block between the effect-catalogue markers with "
        "repro.analysis.sanitizer.effect_catalogue_markdown()"
    )


def test_every_dt_rule_documented_exactly_once():
    table = _generated_block("dt-rule-table")
    for rule_id in DT_REGISTRY:
        assert len(re.findall(rf"\| {rule_id} \|", table)) == 1


def test_doc_mentions_sanitizer_surfaces():
    text = DOC.read_text()
    for needle in (
        "repro audit",
        "audit_paths",
        "REPRO_SANITIZE",
        "repro: allow[",
        "cache.placed.sanitizer_violations",
        "lost-update",
    ):
        assert needle in text, f"docs/static_analysis.md lost {needle!r}"
