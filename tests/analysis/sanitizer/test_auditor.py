"""Behaviour of the AST/call-graph auditor on seeded hazard fixtures.

Each test writes a small package tree to ``tmp_path``, seeds it with a
known determinism/concurrency hazard, and asserts the corresponding DT
rule fires (or, for the negative cases, stays silent): the acceptance
check that a real regression — e.g. an un-derived ``random.random()`` in
a shard-reachable function — cannot land unnoticed.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.sanitizer import Allowance, audit_paths
from repro.analysis.sanitizer.effects import EFFECT_ENV_READ


def run_audit(tmp_path: Path, files: dict[str, str], entry_points, allowances=()):
    """Write ``files`` into a ``pkg`` package under ``tmp_path`` and audit it."""
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for name, text in files.items():
        target = pkg / name
        target.parent.mkdir(parents=True, exist_ok=True)
        if name.endswith("/__init__.py") or name == "__init__.py":
            target.write_text(textwrap.dedent(text))
        else:
            target.write_text(textwrap.dedent(text))
    return audit_paths(
        [pkg], entry_points=tuple(entry_points), allowances=tuple(allowances)
    )


def rules_fired(report):
    return {f.rule for f in report.findings}


# ----------------------------------------------------------------------
# DT001 ambient RNG


def test_ambient_random_in_reachable_function_is_caught(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                return random.random()
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT001"}
    (finding,) = report.findings
    assert finding.qualname == "run"
    assert "global stdlib generator" in finding.message


def test_ambient_random_in_unreachable_function_is_ignored(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                return 1

            def report_only():
                return random.random()
            """
        },
        ["pkg.shard:run"],
    )
    assert report.clean


def test_hazard_found_through_transitive_calls(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "helpers.py": """
            import random

            def jitter():
                return random.gauss(0.0, 1.0)
            """,
            "shard.py": """
            from .helpers import jitter

            def middle():
                return jitter()

            def run():
                return middle()
            """,
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT001"}
    (finding,) = report.findings
    assert finding.module == "pkg.helpers"
    assert finding.qualname == "jitter"


def test_unseeded_default_rng_flagged_seeded_ok(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import numpy as np
            from numpy.random import default_rng

            def run(seed):
                good = default_rng(seed)
                also_good = np.random.default_rng(seed)
                bad = np.random.default_rng()
                return good, also_good, bad
            """
        },
        ["pkg.shard:run"],
    )
    assert [f.rule for f in report.findings] == ["DT001"]
    assert "without a seed" in report.findings[0].message


def test_numpy_global_draw_flagged(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import numpy as np

            def run():
                return np.random.rand(4)
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT001"}


# ----------------------------------------------------------------------
# DT002 wall clock / DT009 hash / DT010 entropy (reachable scope)


def test_clock_hash_and_entropy_reads_caught(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import time
            import uuid

            def run(key):
                t = time.perf_counter()
                h = hash(key)
                u = uuid.uuid4()
                return t, h, u
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT002", "DT009", "DT010"}


def test_datetime_now_caught_via_from_import(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            from datetime import datetime

            def run():
                return datetime.now()
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT002"}


# ----------------------------------------------------------------------
# DT003 ambient environment (everywhere scope)


def test_environ_read_flagged_even_unreachable(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "config.py": """
            import os

            def load():
                return os.environ.get("X"), os.getenv("Y")
            """
        },
        [],
    )
    assert [f.rule for f in report.findings] == ["DT003", "DT003"]


def test_environ_read_sanctioned_by_allowance(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "config.py": """
            import os

            def load():
                return os.environ.get("X")
            """
        },
        [],
        allowances=[
            Allowance(
                EFFECT_ENV_READ, "pkg.config", None, "designated env boundary"
            )
        ],
    )
    assert report.clean


def test_allowance_qualname_scoping(tmp_path):
    files = {
        "config.py": """
        import os

        def load():
            return os.environ.get("X")

        def other():
            return os.environ.get("Y")
        """
    }
    scoped = run_audit(
        tmp_path,
        files,
        [],
        allowances=[
            Allowance(EFFECT_ENV_READ, "pkg.config", "load", "the one front door")
        ],
    )
    assert [f.qualname for f in scoped.findings] == ["other"]


# ----------------------------------------------------------------------
# DT004 unordered iteration / DT005 module state


def test_set_iteration_flagged_sorted_ok(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            def run(items):
                bad = [x for x in {1, 2, 3}]
                also_bad = list({i for i in items})
                fine = sorted({1, 2, 3})
                for x in sorted(set(items)):
                    pass
                return bad, also_bad, fine
            """
        },
        ["pkg.shard:run"],
    )
    assert [f.rule for f in report.findings] == ["DT004", "DT004"]


def test_module_level_mutable_state_in_reachable_module(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            __all__ = ["run"]

            CACHE = {}

            def run():
                return CACHE
            """
        },
        ["pkg.shard:run"],
    )
    # __all__ is exempt; CACHE is not.
    assert [(f.rule, f.qualname) for f in report.findings] == [("DT005", "CACHE")]


def test_module_state_in_unreachable_module_ignored(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "reports.py": """
            CACHE = {}

            def render():
                return CACHE
            """,
            "shard.py": """
            def run():
                return 1
            """,
        },
        ["pkg.shard:run"],
    )
    assert report.clean


def test_module_state_found_via_import_closure(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "state.py": """
            REGISTRY = {}
            """,
            "shard.py": """
            from . import state

            def run():
                return 1
            """,
        },
        ["pkg.shard:run"],
    )
    assert [f.rule for f in report.findings] == ["DT005"]
    assert report.findings[0].module == "pkg.state"


# ----------------------------------------------------------------------
# DT006/DT007 shared-disk discipline (scoped to repro.parallel.cache)


def _shared_disk_tree(body: str) -> dict[str, str]:
    return {
        "__init__.py": "",
        "parallel/__init__.py": "",
        "parallel/cache.py": body,
    }


def run_shared_disk_audit(tmp_path: Path, body: str):
    root = tmp_path / "repro"
    root.mkdir()
    for name, text in _shared_disk_tree(body).items():
        target = root / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    return audit_paths([root], entry_points=(), allowances=())


def test_nonatomic_write_in_shared_disk_module(tmp_path):
    report = run_shared_disk_audit(
        tmp_path,
        """
        def store(path, data):
            with open(path, "wb") as fh:
                fh.write(data)
        """,
    )
    assert rules_fired(report) == {"DT006"}


def test_atomic_write_discipline_accepted(tmp_path):
    report = run_shared_disk_audit(
        tmp_path,
        """
        import os

        def _entry_lock(path):
            pass

        def store(path, tmp, data):
            _entry_lock(path)
            with open(tmp, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        """,
    )
    assert report.clean


def test_unlocked_install_in_shared_disk_module(tmp_path):
    report = run_shared_disk_audit(
        tmp_path,
        """
        import os

        def store(path, tmp, data):
            with open(tmp, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        """,
    )
    assert rules_fired(report) == {"DT007"}


def test_write_outside_shared_disk_module_ignored(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "io_helpers.py": """
            def save(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
            """
        },
        [],
    )
    assert report.clean


# ----------------------------------------------------------------------
# DT008 fork-unsafe submission (everywhere scope)


def test_lambda_and_closure_submissions_flagged(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            def top_level(x):
                return x

            def dispatch(pool, payload):
                pool.submit(lambda: payload)
                def local():
                    return payload
                pool.submit(local)
                pool.submit(top_level, payload)
                return None

            class Engine:
                def go(self, pool):
                    pool.submit(self.work)

                def work(self):
                    return 1
            """
        },
        [],
    )
    kinds = sorted(f.message for f in report.findings)
    assert [f.rule for f in report.findings] == ["DT008"] * 3
    assert any("lambda" in m for m in kinds)
    assert any("nested closure" in m for m in kinds)
    assert any("bound method" in m for m in kinds)


# ----------------------------------------------------------------------
# Pragma suppression semantics (DT000)


def test_justified_pragma_suppresses_and_is_recorded(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                return random.random()  # repro: allow[DT001] -- test fixture exercising suppression
            """
        },
        ["pkg.shard:run"],
    )
    assert report.clean
    (supp,) = report.suppressions
    assert supp.rule == "DT001"
    assert supp.reason == "test fixture exercising suppression"


def test_pragma_on_preceding_comment_line(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                # repro: allow[DT001] -- fixture: pragma on the line above
                return random.random()
            """
        },
        ["pkg.shard:run"],
    )
    assert report.clean
    assert len(report.suppressions) == 1


def test_unjustified_pragma_is_a_finding_and_does_not_suppress(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                return random.random()  # repro: allow[DT001]
            """
        },
        ["pkg.shard:run"],
    )
    assert sorted(rules_fired(report)) == ["DT000", "DT001"]
    assert not report.suppressions


def test_pragma_naming_unknown_rule_is_a_finding(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            def run():
                return 1  # repro: allow[DT999] -- no such rule
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT000"}
    assert "DT999" in report.findings[0].message


def test_pragma_for_wrong_rule_does_not_suppress(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                return random.random()  # repro: allow[DT002] -- wrong rule named
            """
        },
        ["pkg.shard:run"],
    )
    assert rules_fired(report) == {"DT001"}


def test_pragma_mention_inside_docstring_is_not_parsed(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": '''
            def run():
                """Explains the marker ``# repro: allow[DTnnn]`` form."""
                return 1
            '''
        },
        ["pkg.shard:run"],
    )
    assert report.clean


# ----------------------------------------------------------------------
# Report plumbing


def test_report_counts_and_json_roundtrip(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                a = random.random()
                b = random.random()
                return a, b
            """
        },
        ["pkg.shard:run"],
    )
    assert report.counts_by_rule() == {"DT001": 2}
    assert not report.clean
    payload = report.as_dict()
    assert payload["counts_by_rule"] == {"DT001": 2}
    assert len(payload["findings"]) == 2
    assert "DT001" in report.to_text()


def test_disabled_rules_are_skipped(tmp_path):
    report = run_audit(
        tmp_path,
        {
            "shard.py": """
            import random

            def run():
                return random.random()
            """
        },
        ["pkg.shard:run"],
    )
    assert not report.clean
    quiet = audit_paths(
        [tmp_path / "pkg"],
        entry_points=("pkg.shard:run",),
        allowances=(),
        disabled=frozenset({"DT001"}),
    )
    assert quiet.clean
