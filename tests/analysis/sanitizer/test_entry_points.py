"""Every hand-maintained ``module:attr`` catalogue entry must resolve.

``ENTRY_POINTS``, the portability catalogue's artefact entry points,
boundary types and cache-key contracts are all maintained by hand; a
rename anywhere in the library would otherwise silently shrink the
audited surface to nothing.  Each entry must import and resolve to a
real attribute — and the auditor's *static* index must agree that it
scanned the same thing.
"""

from __future__ import annotations

import importlib
from pathlib import Path

import pytest

from repro.analysis.portability.catalog import (
    ARTEFACT_ENTRY_POINTS,
    BOUNDARY_TYPES,
    CACHE_KEY_CONTRACTS,
)
from repro.analysis.sanitizer import ENTRY_POINTS, build_module_index

SRC = Path(__file__).resolve().parents[3] / "src" / "repro"

_ALL_FUNCTION_SPECS = sorted(
    set(ENTRY_POINTS)
    | set(ARTEFACT_ENTRY_POINTS)
    | {c.getter for c in CACHE_KEY_CONTRACTS}
)
_ALL_CLASS_SPECS = sorted(
    set(BOUNDARY_TYPES) | {c.key_type for c in CACHE_KEY_CONTRACTS}
)


def _resolve(spec: str):
    module_name, _, qualname = spec.partition(":")
    module = importlib.import_module(module_name)
    obj = module
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


@pytest.mark.parametrize("spec", _ALL_FUNCTION_SPECS)
def test_function_spec_imports_and_resolves(spec):
    obj = _resolve(spec)
    assert callable(obj), f"{spec} resolved to non-callable {obj!r}"


@pytest.mark.parametrize("spec", _ALL_CLASS_SPECS)
def test_class_spec_imports_and_resolves(spec):
    obj = _resolve(spec)
    assert isinstance(obj, type), f"{spec} resolved to non-class {obj!r}"


def test_static_index_sees_every_catalogued_unit():
    index = build_module_index([SRC])
    for spec in _ALL_FUNCTION_SPECS:
        module_name, _, qualname = spec.partition(":")
        module = index.modules.get(module_name)
        assert module is not None, f"{module_name} not scanned"
        assert qualname in module.units, f"{spec} not in the static index"
    for spec in _ALL_CLASS_SPECS:
        module_name, _, cls = spec.partition(":")
        module = index.modules.get(module_name)
        assert module is not None, f"{module_name} not scanned"
        assert cls in module.classes, f"{spec} not in the class index"
