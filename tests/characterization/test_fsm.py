"""Tests for repro.characterization.fsm."""

import pytest

from repro.characterization.fsm import (
    SUPPORT_LOGIC_FMAX_MHZ,
    CharacterizationFSM,
    FSMState,
)
from repro.errors import CharacterizationError


class TestClockDomainGuard:
    def test_safe_clock_accepted(self):
        fsm = CharacterizationFSM(fsm_clk_mhz=50.0)
        assert fsm.state is FSMState.IDLE

    def test_unsafe_fsm_clock_rejected(self):
        """Paper Sec. III-B: supportive modules must never be the limit."""
        with pytest.raises(CharacterizationError):
            CharacterizationFSM(fsm_clk_mhz=SUPPORT_LOGIC_FMAX_MHZ + 1)

    def test_nonpositive_clock_rejected(self):
        with pytest.raises(CharacterizationError):
            CharacterizationFSM(fsm_clk_mhz=0.0)

    def test_dut_clock_may_exceed_support_fmax(self):
        fsm = CharacterizationFSM()
        fsm.validate_dut_clock(SUPPORT_LOGIC_FMAX_MHZ * 2)  # must not raise

    def test_dut_clock_must_be_physical(self):
        with pytest.raises(CharacterizationError):
            CharacterizationFSM().validate_dut_clock(-1.0)


class TestSequencing:
    def test_run_sequence_visits_all_states(self):
        fsm = CharacterizationFSM()
        visited = fsm.run_sequence()
        assert visited == [
            FSMState.LOAD,
            FSMState.ARM,
            FSMState.RUN,
            FSMState.DRAIN,
            FSMState.DONE,
        ]
        assert fsm.state is FSMState.IDLE

    def test_completed_runs_counted(self):
        fsm = CharacterizationFSM()
        fsm.run_sequence()
        fsm.run_sequence()
        assert fsm.completed_runs == 2

    def test_require_guards_protocol(self):
        fsm = CharacterizationFSM()
        fsm.advance()  # LOAD
        with pytest.raises(CharacterizationError):
            fsm.require(FSMState.IDLE)

    def test_run_sequence_from_wrong_state_rejected(self):
        fsm = CharacterizationFSM()
        fsm.advance()
        with pytest.raises(CharacterizationError):
            fsm.run_sequence()
