"""Tests for repro.characterization.results — containers and persistence."""

import numpy as np
import pytest

from repro.characterization.results import CharacterizationResult
from repro.errors import CharacterizationError


def _small_result():
    return CharacterizationResult(
        w_data=8,
        w_coeff=2,
        device_serial=9,
        freqs_mhz=np.array([300.0, 350.0]),
        multiplicands=np.array([0, 1, 2, 3]),
        locations=((0, 0), (10, 10)),
        variance=np.arange(16, dtype=float).reshape(2, 4, 2),
        mean=np.zeros((2, 4, 2)),
        error_rate=np.zeros((2, 4, 2)),
        n_samples=100,
    )


class TestContainer:
    def test_shape_validation(self):
        with pytest.raises(CharacterizationError):
            CharacterizationResult(
                w_data=8,
                w_coeff=2,
                device_serial=9,
                freqs_mhz=np.array([300.0]),
                multiplicands=np.array([0, 1]),
                locations=((0, 0),),
                variance=np.zeros((1, 3, 1)),  # wrong M
                mean=np.zeros((1, 2, 1)),
                error_rate=np.zeros((1, 2, 1)),
                n_samples=10,
            )

    def test_variance_grid_pools_locations(self):
        r = _small_result()
        pooled = r.variance_grid(None)
        assert pooled.shape == (4, 2)
        assert np.allclose(pooled, r.variance.mean(axis=0))

    def test_variance_grid_specific_location(self):
        r = _small_result()
        assert np.array_equal(r.variance_grid((10, 10)), r.variance[1])

    def test_unknown_location_rejected(self):
        with pytest.raises(CharacterizationError):
            _small_result().variance_grid((5, 5))

    def test_records_flatten(self):
        recs = _small_result().records()
        assert len(recs) == 2 * 4 * 2
        assert recs[0].location == (0, 0)
        assert recs[-1].multiplicand == 3


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        r = _small_result()
        path = tmp_path / "char.npz"
        r.save(path)
        loaded = CharacterizationResult.load(path)
        assert loaded.w_data == r.w_data
        assert loaded.device_serial == r.device_serial
        assert loaded.locations == r.locations
        assert np.array_equal(loaded.variance, r.variance)
        assert np.array_equal(loaded.freqs_mhz, r.freqs_mhz)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CharacterizationError):
            CharacterizationResult.load(tmp_path / "nope.npz")

    def test_real_result_roundtrip(self, char_result, tmp_path):
        path = tmp_path / "real.npz"
        char_result.save(path)
        loaded = CharacterizationResult.load(path)
        assert np.array_equal(loaded.variance, char_result.variance)
        assert loaded.n_samples == char_result.n_samples
