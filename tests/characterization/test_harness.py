"""Tests for repro.characterization.harness — the full sweep."""

import numpy as np
import pytest

from repro.characterization import (
    CharacterizationConfig,
    characterize_multiplier,
    error_trace,
)
from repro.errors import CharacterizationError


class TestConfigValidation:
    def test_defaults_ok(self):
        CharacterizationConfig()

    def test_empty_freqs_rejected(self):
        with pytest.raises(CharacterizationError):
            CharacterizationConfig(freqs_mhz=())

    def test_negative_freq_rejected(self):
        with pytest.raises(CharacterizationError):
            CharacterizationConfig(freqs_mhz=(100.0, -5.0))

    def test_tiny_samples_rejected(self):
        with pytest.raises(CharacterizationError):
            CharacterizationConfig(n_samples=1)

    def test_zero_locations_rejected(self):
        with pytest.raises(CharacterizationError):
            CharacterizationConfig(n_locations=0)


class TestSweep:
    def test_grid_shapes(self, char_result):
        l, m, f = (
            len(char_result.locations),
            len(char_result.multiplicands),
            len(char_result.freqs_mhz),
        )
        assert char_result.variance.shape == (l, m, f)
        assert l == 2 and m == 16 and f == 5

    def test_variance_monotone_in_frequency_on_average(self, char_result):
        """Paper Sec. III-C: errors are cumulative with frequency."""
        mean_per_freq = char_result.variance.mean(axis=(0, 1))
        assert mean_per_freq[-1] > mean_per_freq[0]
        # Last frequency must show substantial errors.
        assert mean_per_freq[-1] > 0

    def test_low_frequency_error_free(self, char_result):
        assert np.all(char_result.variance[:, :, 0] == 0)

    def test_sparse_multiplicands_err_less(self, char_result):
        """Paper Fig. 5: few '1' bits -> fewer over-clocking errors."""
        mags = char_result.multiplicands
        pop = np.array([bin(m).count("1") for m in mags])
        v_hi = char_result.variance[:, :, -1].mean(axis=0)
        sparse = v_hi[pop <= 1].mean()
        dense = v_hi[pop >= 3].mean()
        assert dense > sparse

    def test_locations_differ(self, char_result):
        """Paper Fig. 4: placement changes the error pattern."""
        v0 = char_result.variance[0]
        v1 = char_result.variance[1]
        assert not np.allclose(v0, v1)

    def test_explicit_multiplicand_subset(self, device):
        cfg = CharacterizationConfig(
            freqs_mhz=(300.0, 400.0),
            n_samples=60,
            multiplicands=(3, 200),
            n_locations=1,
        )
        res = characterize_multiplier(device, 8, 8, cfg, seed=0)
        assert res.multiplicands.tolist() == [3, 200]

    def test_multiplicand_out_of_range_rejected(self, device):
        cfg = CharacterizationConfig(
            freqs_mhz=(300.0,), n_samples=60, multiplicands=(300,), n_locations=1
        )
        with pytest.raises(CharacterizationError):
            characterize_multiplier(device, 8, 4, cfg, seed=0)

    def test_deterministic(self, device):
        cfg = CharacterizationConfig(
            freqs_mhz=(380.0,), n_samples=80, multiplicands=(255,), n_locations=1
        )
        a = characterize_multiplier(device, 8, 8, cfg, seed=5)
        b = characterize_multiplier(device, 8, 8, cfg, seed=5)
        assert np.array_equal(a.variance, b.variance)

    def test_device_specific(self, device, other_device):
        cfg = CharacterizationConfig(
            freqs_mhz=(400.0,), n_samples=120, multiplicands=(255, 170), n_locations=1
        )
        a = characterize_multiplier(device, 8, 8, cfg, seed=5)
        b = characterize_multiplier(other_device, 8, 8, cfg, seed=5)
        assert not np.allclose(a.variance, b.variance)


class TestErrorTrace:
    def test_trace_statistics(self, device):
        run = error_trace(device, 222, 420.0, 500, location=(0, 0), seed=1)
        assert run.captured.shape == (500,)
        assert run.error_rate > 0

    def test_trace_deterministic(self, device):
        a = error_trace(device, 222, 420.0, 200, seed=1)
        b = error_trace(device, 222, 420.0, 200, seed=1)
        assert np.array_equal(a.captured, b.captured)
