"""Tests for repro.characterization.stream — the BRAM models."""

import numpy as np
import pytest

from repro.characterization.stream import M9K_BITS, InputStreamBRAM, OutputStreamBRAM
from repro.errors import CharacterizationError


class TestInputBram:
    def test_load_and_read(self):
        bram = InputStreamBRAM(width=8, depth=16)
        data = np.arange(10)
        bram.load(data)
        assert bram.loaded
        assert np.array_equal(bram.read_all(), data)

    def test_read_before_load_rejected(self):
        with pytest.raises(CharacterizationError):
            InputStreamBRAM(width=8, depth=4).read_all()

    def test_depth_enforced(self):
        bram = InputStreamBRAM(width=8, depth=4)
        with pytest.raises(CharacterizationError):
            bram.load(np.arange(5))

    def test_width_enforced(self):
        bram = InputStreamBRAM(width=4, depth=8)
        with pytest.raises(CharacterizationError):
            bram.load(np.array([16]))
        with pytest.raises(CharacterizationError):
            bram.load(np.array([-1]))

    def test_clear(self):
        bram = InputStreamBRAM(width=8, depth=4)
        bram.load(np.arange(3))
        bram.clear()
        assert not bram.loaded

    def test_block_count(self):
        # 1024 x 9 bits = 9216 bits = exactly one M9K.
        assert InputStreamBRAM(width=9, depth=1024).n_blocks == 1
        assert InputStreamBRAM(width=9, depth=1025).n_blocks == 2
        assert M9K_BITS == 9216

    def test_one_dimensional_only(self):
        bram = InputStreamBRAM(width=8, depth=16)
        with pytest.raises(CharacterizationError):
            bram.load(np.zeros((2, 2)))


class TestOutputBram:
    def test_capture_and_retrieve(self):
        bram = OutputStreamBRAM(width=16, depth=8)
        bram.write_all(np.array([1, 2, 3]))
        assert np.array_equal(bram.retrieve(), [1, 2, 3])

    def test_retrieve_clears(self):
        bram = OutputStreamBRAM(width=16, depth=8)
        bram.write_all(np.array([1]))
        bram.retrieve()
        with pytest.raises(CharacterizationError):
            bram.retrieve()

    def test_port_truncates_to_width(self):
        bram = OutputStreamBRAM(width=4, depth=8)
        bram.write_all(np.array([17]))  # 0b10001 -> 0b0001
        assert bram.retrieve()[0] == 1

    def test_depth_enforced(self):
        bram = OutputStreamBRAM(width=8, depth=2)
        with pytest.raises(CharacterizationError):
            bram.write_all(np.arange(3))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(CharacterizationError):
            OutputStreamBRAM(width=0, depth=8)
