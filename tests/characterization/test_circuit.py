"""Tests for repro.characterization.circuit."""

import numpy as np
import pytest

from repro.characterization.circuit import CharacterizationCircuit
from repro.errors import CharacterizationError


@pytest.fixture(scope="module")
def circuit(device):
    return CharacterizationCircuit(device, 8, 8, anchor=(0, 0), seed=0)


def _stim(n=400, seed=0):
    return np.random.default_rng(seed).integers(0, 256, n)


class TestRun:
    def test_slow_clock_error_free(self, circuit):
        run = circuit.run(222, _stim(), 100.0, np.random.default_rng(1))
        assert run.error_rate == 0.0
        assert run.error_variance == 0.0

    def test_overclocked_run_produces_errors(self, circuit):
        run = circuit.run(255, _stim(), 420.0, np.random.default_rng(1))
        assert run.error_rate > 0.0
        assert run.error_variance > 0.0

    def test_expected_matches_exact_products(self, circuit):
        stim = _stim(100)
        run = circuit.run(7, stim, 100.0, np.random.default_rng(1))
        # Capture cycles correspond to stimulus words 1..N-1.
        assert np.array_equal(run.expected, 7 * stim[1:])

    def test_achieved_frequency_is_pll_grid(self, circuit):
        run = circuit.run(9, _stim(50), 313.0, np.random.default_rng(1))
        assert abs(run.freq_mhz - 313.0) / 313.0 < 0.01
        assert run.freq_mhz != 313.0 or True  # PLL may or may not hit exactly

    def test_multiplicand_range_enforced(self, circuit):
        with pytest.raises(CharacterizationError):
            circuit.run(256, _stim(10), 100.0, np.random.default_rng(0))

    def test_short_stimulus_rejected(self, circuit):
        with pytest.raises(CharacterizationError):
            circuit.run(3, np.array([1]), 100.0, np.random.default_rng(0))

    def test_simulation_reused_across_frequencies(self, circuit):
        """The settle behaviour is clock-independent: one sim, many captures."""
        stim = _stim(200)
        timing = circuit.simulate_stream(100, stim)
        slow = circuit.capture(timing, 100, 120.0, np.random.default_rng(0))
        fast = circuit.capture(timing, 100, 430.0, np.random.default_rng(0))
        assert slow.error_rate == 0.0
        assert fast.error_rate >= slow.error_rate

    def test_fsm_cycles_per_capture(self, circuit):
        before = circuit.fsm.completed_runs
        circuit.run(1, _stim(20), 100.0, np.random.default_rng(0))
        assert circuit.fsm.completed_runs == before + 1

    def test_errors_property(self, circuit):
        run = circuit.run(255, _stim(), 430.0, np.random.default_rng(2))
        assert np.array_equal(run.errors, run.captured - run.expected)
