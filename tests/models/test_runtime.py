"""Tests for repro.models.runtime — paper eqs. (7)-(8)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models.runtime import (
    PAPER_RUNTIME_MODEL,
    RuntimeModel,
    predict_runtime_seconds,
)


class TestPaperModel:
    def test_worked_example_matches_quote(self):
        """Sec. VI-E: #Freqs=1, K=3, Q=5, #HP=2, wl=3..9 -> ~1 h 44 m."""
        total = PAPER_RUNTIME_MODEL.total_seconds(
            wordlengths=list(range(3, 10)), k=3, q=5, n_hyperparams=2, n_freqs=1
        )
        quoted = 1 * 3600 + 44 * 60  # 6240 s
        assert abs(total - quoted) / quoted < 0.05

    def test_vector_seconds_exponential(self):
        r = PAPER_RUNTIME_MODEL.vector_seconds(np.arange(3, 10))
        ratios = r[1:] / r[:-1]
        assert np.allclose(ratios, np.exp(PAPER_RUNTIME_MODEL.rate))

    def test_structure_factor(self):
        """Eq. 7: dimension 1 samples once, later dimensions Q times each."""
        base = PAPER_RUNTIME_MODEL.total_seconds([5], k=1, q=5, n_hyperparams=1, n_freqs=1)
        k3 = PAPER_RUNTIME_MODEL.total_seconds([5], k=3, q=5, n_hyperparams=1, n_freqs=1)
        assert k3 / base == pytest.approx(11.0)  # 1 + Q(K-1) = 11

    def test_scales_linear_in_hp_and_freqs(self):
        one = predict_runtime_seconds([3, 4], 2, 2, 1, 1)
        assert predict_runtime_seconds([3, 4], 2, 2, 3, 1) == pytest.approx(3 * one)
        assert predict_runtime_seconds([3, 4], 2, 2, 1, 4) == pytest.approx(4 * one)

    def test_invalid_args_rejected(self):
        with pytest.raises(ModelError):
            PAPER_RUNTIME_MODEL.total_seconds([], 1, 1, 1, 1)
        with pytest.raises(ModelError):
            PAPER_RUNTIME_MODEL.total_seconds([3], 0, 1, 1, 1)
        with pytest.raises(ModelError):
            PAPER_RUNTIME_MODEL.vector_seconds(0)


class TestFit:
    def test_recovers_known_constants(self):
        truth = RuntimeModel(scale=0.2, rate=0.5)
        wl = np.arange(3, 10)
        t = truth.vector_seconds(wl)
        fitted = RuntimeModel.fit(wl.tolist(), t.tolist())
        assert fitted.scale == pytest.approx(0.2, rel=1e-6)
        assert fitted.rate == pytest.approx(0.5, rel=1e-6)

    def test_fit_with_noise(self):
        rng = np.random.default_rng(0)
        truth = RuntimeModel(scale=0.1, rate=0.6)
        wl = np.arange(3, 10)
        t = truth.vector_seconds(wl) * rng.lognormal(0, 0.05, wl.size)
        fitted = RuntimeModel.fit(wl.tolist(), t.tolist())
        assert fitted.rate == pytest.approx(0.6, abs=0.1)

    def test_insufficient_data_rejected(self):
        with pytest.raises(ModelError):
            RuntimeModel.fit([3], [1.0])
        with pytest.raises(ModelError):
            RuntimeModel.fit([3, 3], [1.0, 1.1])

    def test_nonpositive_times_rejected(self):
        with pytest.raises(ModelError):
            RuntimeModel.fit([3, 4], [1.0, 0.0])

    def test_invalid_scale_rejected(self):
        with pytest.raises(ModelError):
            RuntimeModel(scale=0.0)
