"""Tests for repro.models.area_model."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models.area_model import (
    AreaSample,
    collect_area_samples,
    fit_area_model,
)


@pytest.fixture(scope="module")
def samples(device):
    return collect_area_samples(device, (3, 5, 7, 9), w_data=9, n_runs=4, seed=0)


@pytest.fixture(scope="module")
def model(samples):
    return fit_area_model(samples)


class TestCollection:
    def test_sample_count(self, samples):
        assert len(samples) == 4 * 4

    def test_area_grows_with_wordlength(self, samples):
        by_wl = {}
        for s in samples:
            by_wl.setdefault(s.wordlength, []).append(s.logic_elements)
        means = [np.mean(by_wl[wl]) for wl in (3, 5, 7, 9)]
        assert means == sorted(means)

    def test_runs_scatter(self, samples):
        """Paper Fig. 6: repeated synthesis runs scatter around the trend."""
        by_wl = {}
        for s in samples:
            by_wl.setdefault(s.wordlength, set()).add(s.logic_elements)
        assert any(len(v) > 1 for v in by_wl.values())

    def test_invalid_args_rejected(self, device):
        with pytest.raises(ModelError):
            collect_area_samples(device, (), n_runs=2)
        with pytest.raises(ModelError):
            collect_area_samples(device, (3,), n_runs=0)


class TestFit:
    def test_prediction_tracks_observations(self, model, samples):
        for s in samples:
            rel = abs(float(model.predict(s.wordlength)) - s.logic_elements)
            assert rel < 0.25 * s.logic_elements + 20

    def test_confidence_interval_brackets_prediction(self, model):
        lo, hi = model.confidence_interval(5)
        mid = float(model.predict(5))
        assert lo < mid < hi

    def test_coverage_about_95_percent(self, model, samples):
        hits = sum(
            model.within_interval(s.wordlength, s.logic_elements) for s in samples
        )
        assert hits / len(samples) >= 0.8

    def test_strict_range_enforced(self, model):
        with pytest.raises(ModelError):
            model.predict(15, strict=True)

    def test_too_few_samples_rejected(self):
        tiny = [AreaSample(3, 100, 0, (0, 0)), AreaSample(4, 120, 0, (0, 0))]
        with pytest.raises(ModelError):
            fit_area_model(tiny, degree=2)

    def test_insufficient_distinct_wordlengths_rejected(self):
        flat = [AreaSample(3, 100 + i, i, (0, 0)) for i in range(6)]
        with pytest.raises(ModelError):
            fit_area_model(flat, degree=2)

    def test_design_area_scales_with_k(self, model):
        assert model.design_area(5, 3) == pytest.approx(3 * float(model.predict(5)))
        assert model.design_area(5, 3, overhead_le=40) == pytest.approx(
            3 * float(model.predict(5)) + 40
        )

    def test_design_area_invalid_k(self, model):
        with pytest.raises(ModelError):
            model.design_area(5, 0)
