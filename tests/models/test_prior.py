"""Tests for repro.models.prior — eq. (6) and Fig. 7 behaviour."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.models.prior import CoefficientPrior, prior_over_magnitudes
from tests.conftest import make_synthetic_error_model


class TestPriorFunction:
    def test_normalised(self):
        v = np.array([0.0, 10.0, 100.0, 1e6])
        p = prior_over_magnitudes(v, beta=2.0)
        assert p.sum() == pytest.approx(1.0)

    def test_monotone_decreasing_in_variance(self):
        v = np.array([0.0, 1.0, 10.0, 100.0])
        p = prior_over_magnitudes(v, beta=1.0)
        assert np.all(np.diff(p) < 0)

    def test_beta_zero_rejected(self):
        with pytest.raises(ModelError):
            prior_over_magnitudes(np.array([1.0]), beta=0.0)

    def test_negative_variance_rejected(self):
        with pytest.raises(ModelError):
            prior_over_magnitudes(np.array([-1.0]), beta=1.0)

    @given(st.floats(min_value=0.05, max_value=10.0))
    def test_always_a_distribution(self, beta):
        v = np.array([0.0, 5.0, 50.0, 500.0])
        p = prior_over_magnitudes(v, beta)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p > 0)


class TestCoefficientPrior:
    def _prior(self, beta, freq=350.0, wl=4):
        return CoefficientPrior.from_error_model(
            make_synthetic_error_model(wl), freq, beta
        )

    def test_signed_grid_symmetric(self):
        p = self._prior(1.0)
        assert p.values[0] == pytest.approx(-p.values[-1])
        assert p.n_values == 2 * 16 - 1  # zero not duplicated

    def test_grid_spans_unit_interval(self):
        p = self._prior(1.0)
        assert p.values.min() >= -1.0 and p.values.max() < 1.0

    def test_same_magnitude_same_mass(self):
        p = self._prior(2.0)
        # mass(-v) == mass(+v): sign path is timing-free.
        assert p.mass[0] == pytest.approx(p.mass[-1])

    def test_small_beta_nearly_flat(self):
        """Fig. 7: beta = 0.1 -> almost uniform sampling probability."""
        p = self._prior(0.1)
        assert p.mass.max() / p.mass.min() < 3.0

    def test_large_beta_suppresses_bad_values(self):
        """Fig. 7: beta = 4 -> error-prone values effectively excluded."""
        p = self._prior(4.0)
        assert p.mass.max() / p.mass.min() > 1e4

    def test_entropy_decreases_with_beta(self):
        entropies = [self._prior(b).entropy() for b in (0.1, 1.0, 4.0)]
        assert entropies == sorted(entropies, reverse=True)

    def test_error_free_frequency_flat_prior(self):
        # At the lowest characterised frequency all variances are zero.
        p = self._prior(4.0, freq=250.0)
        assert p.mass.max() == pytest.approx(p.mass.min())

    def test_magnitude_of_roundtrip(self):
        p = self._prior(1.0)
        idx = np.arange(p.n_values)
        mags = p.magnitude_of(idx)
        assert np.array_equal(
            mags, np.abs(np.rint(p.values * (1 << p.wordlength))).astype(int)
        )

    def test_variances_aligned(self):
        p = self._prior(1.0)
        assert p.variances is not None
        assert p.variances.shape == p.values.shape
        # Mass must be the eq.-6 transform of the aligned variances.
        expected = (1.0 + p.variances) ** -1.0
        assert np.allclose(p.mass, expected / expected.sum())


class TestStaticProfilePrior:
    @pytest.fixture(scope="class")
    def profile(self, placed_mult8):
        from repro.analysis import coefficient_timing_profile

        return coefficient_timing_profile(
            placed_mult8, multiplicands=[0, 1, 37, 128, 222, 255]
        )

    def test_builds_and_normalises(self, profile):
        p = CoefficientPrior.from_static_profile(profile, 600.0, beta=1.0)
        assert p.mass.sum() == pytest.approx(1.0)
        assert p.wordlength == 8
        assert np.all(np.diff(p.values) > 0)

    def test_m0_gets_maximal_mass(self, profile):
        # m=0 never errs at any frequency: its static variance proxy is 0.
        p = CoefficientPrior.from_static_profile(profile, 2000.0, beta=2.0)
        zero_idx = int(np.argmin(np.abs(p.values)))
        assert p.mass[zero_idx] == pytest.approx(p.mass.max())

    def test_flat_at_slow_clock(self, profile):
        # Below every min_period the proxy is all-zero: uniform prior.
        p = CoefficientPrior.from_static_profile(profile, 1.0, beta=4.0)
        assert p.mass.max() == pytest.approx(p.mass.min())

    def test_sign_symmetry(self, profile):
        p = CoefficientPrior.from_static_profile(profile, 600.0, beta=1.0)
        assert p.mass[0] == pytest.approx(p.mass[-1])

    def test_wordlength_override(self, profile):
        p = CoefficientPrior.from_static_profile(
            profile, 600.0, beta=1.0, wordlength=9
        )
        assert p.wordlength == 9
        assert np.all(np.abs(p.values) < 1.0)
