"""Tests for repro.models.error_model."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models.error_model import ErrorModel, ErrorModelSet, build_error_model
from tests.conftest import make_synthetic_error_model


class TestBuild:
    def test_from_characterization(self, char_result, error_model):
        assert error_model.w_data == char_result.w_data
        assert error_model.w_coeff == char_result.w_coeff
        assert np.array_equal(
            error_model.variance, char_result.variance_grid(None)
        )

    def test_location_specific(self, char_result):
        loc = char_result.locations[0]
        m = build_error_model(char_result, location=loc)
        assert np.array_equal(m.variance, char_result.variance[0])


class TestQueries:
    def test_variance_at_exact_freq(self):
        m = make_synthetic_error_model(3)
        got = m.variance_at(300.0)
        assert np.array_equal(got, m.variance[:, 1])

    def test_linear_interpolation(self):
        m = make_synthetic_error_model(3)
        mid = m.variance_at(325.0)
        expected = 0.5 * (m.variance[:, 1] + m.variance[:, 2])
        assert np.allclose(mid, expected)

    def test_clamping_below(self):
        m = make_synthetic_error_model(3)
        assert np.array_equal(m.variance_at(100.0), m.variance[:, 0])

    def test_strict_out_of_range_rejected(self):
        m = make_synthetic_error_model(3)
        with pytest.raises(ModelError):
            m.variance_at(100.0, strict=True)

    def test_query_specific_multiplicand(self):
        m = make_synthetic_error_model(4)
        v = m.query(np.array([7]), 350.0)
        assert v[0] == pytest.approx(3 * 2 * 100.0)  # popcount(7)=3, top freq

    def test_query_unknown_multiplicand_rejected(self):
        m = make_synthetic_error_model(3)
        with pytest.raises(ModelError):
            m.query(np.array([99]), 300.0)

    def test_query_row(self):
        m = make_synthetic_error_model(3)
        row = m.query_row(5)
        assert row.shape == (3,)

    def test_error_free_fmax(self):
        m = make_synthetic_error_model(3)
        # Variance is zero only at the first frequency (onset_index=1).
        assert m.error_free_fmax(7) == 250.0
        # Zero multiplicand never errs: full span is error-free.
        assert m.error_free_fmax(0) == 350.0

    def test_heatmap_is_copy(self):
        m = make_synthetic_error_model(3)
        h = m.heatmap()
        h[0, 0] = 123.0
        assert m.variance[0, 0] != 123.0


class TestValidation:
    def test_negative_variance_rejected(self):
        with pytest.raises(ModelError):
            ErrorModel(
                w_data=9,
                w_coeff=2,
                device_serial=0,
                multiplicands=np.arange(4),
                freqs_mhz=np.array([300.0, 350.0]),
                variance=-np.ones((4, 2)),
                mean=np.zeros((4, 2)),
            )

    def test_unsorted_freqs_rejected(self):
        with pytest.raises(ModelError):
            ErrorModel(
                w_data=9,
                w_coeff=2,
                device_serial=0,
                multiplicands=np.arange(4),
                freqs_mhz=np.array([350.0, 300.0]),
                variance=np.zeros((4, 2)),
                mean=np.zeros((4, 2)),
            )


class TestModelSet:
    def test_lookup(self, synthetic_model_set):
        assert synthetic_model_set.wordlengths == tuple(range(3, 10))
        assert synthetic_model_set.model(5).w_coeff == 5

    def test_missing_wordlength_rejected(self, synthetic_model_set):
        with pytest.raises(ModelError):
            synthetic_model_set.model(12)

    def test_mixed_devices_rejected(self):
        with pytest.raises(ModelError):
            ErrorModelSet(
                {
                    3: make_synthetic_error_model(3, serial=0),
                    4: make_synthetic_error_model(4, serial=1),
                }
            )

    def test_mismatched_key_rejected(self):
        with pytest.raises(ModelError):
            ErrorModelSet({5: make_synthetic_error_model(4)})

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            ErrorModelSet({})

    def test_variance_at_delegates(self, synthetic_model_set):
        v = synthetic_model_set.variance_at(4, 350.0)
        assert v.shape == (16,)
