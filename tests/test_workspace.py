"""Tests for repro.workspace and the repro-flow CLI."""

import numpy as np
import pytest

from repro.characterization import CharacterizationConfig, characterize_multiplier
from repro.config import TableISettings
from repro.core.klt import klt_reference_design
from repro.datasets import low_rank_gaussian
from repro.errors import ConfigError
from repro.models.area_model import collect_area_samples, fit_area_model
from repro.workspace import Workspace

SETTINGS = TableISettings(
    n_characterization=60,
    n_train=30,
    n_test=30,
    burn_in=10,
    n_samples=30,
    q=2,
    min_coeff_wordlength=3,
    max_coeff_wordlength=4,
)


@pytest.fixture()
def ws(tmp_path, device):
    w = Workspace(tmp_path / "ws")
    w.initialize(device, SETTINGS, seed=3)
    return w


class TestLifecycle:
    def test_initialize_and_reload_meta(self, ws, device):
        assert ws.exists()
        assert ws.device().serial == device.serial
        assert ws.settings() == SETTINGS
        assert ws.seed() == 3

    def test_double_initialize_rejected(self, ws, device):
        with pytest.raises(ConfigError):
            ws.initialize(device, SETTINGS, seed=3)

    def test_missing_workspace_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            Workspace(tmp_path / "nope").device()

    def test_status_of_empty_workspace(self, ws):
        assert ws.characterized_wordlengths() == []
        assert ws.design_sets() == []


class TestArtefacts:
    def test_characterization_roundtrip(self, ws, device):
        cfg = CharacterizationConfig(
            freqs_mhz=(400.0, 500.0), n_samples=60, multiplicands=(1, 7), n_locations=1
        )
        for wl in (3, 4):
            r = characterize_multiplier(device, 9, wl, cfg, seed=3)
            ws.save_characterization(wl, r)
        assert ws.characterized_wordlengths() == [3, 4]
        models = ws.load_error_models()
        assert models.wordlengths == (3, 4)

    def test_area_model_roundtrip(self, ws, device):
        samples = collect_area_samples(device, (3, 4), w_data=9, n_runs=3, seed=0)
        model = fit_area_model(samples, degree=1)
        ws.save_area_model(model)
        loaded = ws.load_area_model()
        assert np.allclose(loaded.coeffs, model.coeffs)
        assert loaded.residual_sigma == model.residual_sigma
        assert loaded.wl_range == model.wl_range

    def test_missing_area_model_rejected(self, ws):
        with pytest.raises(ConfigError):
            ws.load_area_model()

    def test_design_set_roundtrip(self, ws):
        x = low_rank_gaussian(6, 3, 40, np.random.default_rng(0))
        designs = [klt_reference_design(x, 3, 4, 9, 310.0, area_le=100.0)]
        ws.save_design_set("baseline", designs)
        assert ws.design_sets() == ["baseline"]
        loaded = ws.load_design_set("baseline")
        assert np.allclose(loaded[0].values, designs[0].values)

    def test_bad_design_set_name_rejected(self, ws):
        with pytest.raises(ConfigError):
            ws.save_design_set("a/b", [])


class TestFrameworkRehydration:
    def test_preseeded_caches(self, ws, device):
        cfg = CharacterizationConfig(
            freqs_mhz=(400.0, 500.0), n_samples=60, n_locations=1
        )
        for wl in (3, 4):
            ws.save_characterization(
                wl, characterize_multiplier(device, 9, wl, cfg, seed=3)
            )
        samples = collect_area_samples(device, (3, 4), w_data=9, n_runs=3, seed=0)
        ws.save_area_model(fit_area_model(samples, degree=1))

        fw = ws.framework()
        # No re-simulation: the caches come straight from disk.
        assert fw.characterize().wordlengths == (3, 4)
        assert fw.fit_area_model().wl_range == (3, 4)


class TestFlowCli:
    def test_end_to_end_flow(self, tmp_path, capsys):
        from repro.cli_flow import main

        ws = str(tmp_path / "flow")
        assert main(["init", ws, "--serial", "77", "--scale", "0.012"]) == 0
        assert main(["status", ws]) == 0
        out = capsys.readouterr().out
        assert "serial 77" in out
        assert main(["characterize", ws]) == 0
        assert main(["fit-area", ws]) == 0
        assert main(["optimize", ws, "--beta", "4.0", "--name", "t1"]) == 0
        assert main(["evaluate", ws, "--name", "t1", "--domain", "predicted"]) == 0
        out = capsys.readouterr().out
        assert "predicted MSE" in out
        assert main(["status", ws]) == 0
        out = capsys.readouterr().out
        assert "t1" in out


class TestSharedWorkspace:
    """Regressions for the serve-era sharing contract: idempotent
    initialisation, one memoised cache handle, and atomic writes."""

    def test_initialize_exist_ok_is_idempotent(self, ws, device):
        before = ws.meta_path.read_bytes()
        ws.initialize(device, SETTINGS, seed=3, exist_ok=True)
        assert ws.meta_path.read_bytes() == before

    def test_initialize_exist_ok_rejects_identity_mismatch(
        self, ws, device, other_device
    ):
        with pytest.raises(ConfigError, match="different"):
            ws.initialize(other_device, SETTINGS, seed=3, exist_ok=True)
        with pytest.raises(ConfigError, match="different"):
            ws.initialize(device, SETTINGS, seed=4, exist_ok=True)

    def test_placed_cache_is_memoised(self, ws):
        assert ws.placed_cache() is ws.placed_cache()

    def test_injected_cache_wins(self, tmp_path, device):
        from repro.parallel.cache import PlacedDesignCache

        shared = PlacedDesignCache(tmp_path / "shared")
        w = Workspace(tmp_path / "ws2", cache=shared)
        w.initialize(device, SETTINGS, seed=3)
        assert w.placed_cache() is shared
        # The framework places through the injected cache too.
        assert w.framework().cache is shared

    def test_atomic_writes_leave_no_temp_files(self, ws, device):
        cfg = CharacterizationConfig(
            freqs_mhz=(400.0, 500.0), n_samples=60,
            multiplicands=(1, 7), n_locations=1,
        )
        ws.save_characterization(
            3, characterize_multiplier(device, 9, 3, cfg, seed=3)
        )
        samples = collect_area_samples(device, (3, 4), w_data=9, n_runs=3, seed=0)
        ws.save_area_model(fit_area_model(samples, degree=1))
        ws.save_design_set("t", [])
        leftovers = [p for p in ws.root.rglob("*") if ".tmp." in p.name]
        assert leftovers == []
        # Globs only ever see complete artefacts, never in-flight temps.
        assert ws.characterized_wordlengths() == [3]
        assert ws.design_sets() == ["t"]

    def test_concurrent_saves_of_same_wordlength(self, ws, device):
        import threading

        cfg = CharacterizationConfig(
            freqs_mhz=(400.0, 500.0), n_samples=60,
            multiplicands=(1, 7), n_locations=1,
        )
        result = characterize_multiplier(device, 9, 3, cfg, seed=3)
        errors = []

        def save():
            try:
                ws.save_characterization(3, result)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=save) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        loaded = ws.load_error_models()
        assert loaded.wordlengths == (3,)
