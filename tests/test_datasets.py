"""Tests for repro.datasets."""

import numpy as np
import pytest

from repro.datasets import (
    face_like_patches,
    low_rank_gaussian,
    scale_to_unit,
    uniform_stream,
)
from repro.errors import ConfigError


class TestScaleToUnit:
    def test_scales_to_unit_peak(self):
        x = np.array([3.0, -6.0, 1.0])
        s = scale_to_unit(x)
        assert np.abs(s).max() == pytest.approx(1.0)

    def test_zero_unchanged(self):
        assert np.all(scale_to_unit(np.zeros(5)) == 0)


class TestLowRank:
    def test_shape_and_range(self):
        x = low_rank_gaussian(6, 3, 200, np.random.default_rng(0))
        assert x.shape == (6, 200)
        assert np.abs(x).max() <= 1.0

    def test_zero_mean_rows(self):
        x = low_rank_gaussian(6, 3, 500, np.random.default_rng(0))
        assert np.abs(x.mean(axis=1)).max() < 1e-10

    def test_effective_rank(self):
        x = low_rank_gaussian(8, 2, 400, np.random.default_rng(1), noise=0.001)
        s = np.linalg.svd(x, compute_uv=False)
        assert s[1] / s[0] > 0.1
        assert s[2] / s[0] < 0.05

    def test_deterministic_per_rng(self):
        a = low_rank_gaussian(4, 2, 50, np.random.default_rng(7))
        b = low_rank_gaussian(4, 2, 50, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            low_rank_gaussian(4, 5, 50, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            low_rank_gaussian(4, 2, 1, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            low_rank_gaussian(4, 2, 50, np.random.default_rng(0), decay=0.0)


class TestFacePatches:
    def test_shape(self):
        x = face_like_patches(8, 8, 40, np.random.default_rng(0))
        assert x.shape == (64, 40)
        assert np.abs(x).max() <= 1.0

    def test_low_dimensional_structure(self):
        x = face_like_patches(8, 8, 200, np.random.default_rng(1), n_modes=4, noise=0.001)
        s = np.linalg.svd(x, compute_uv=False)
        assert s[4] / s[0] < 0.05  # energy concentrated in 4 modes

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            face_like_patches(1, 8, 10, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            face_like_patches(8, 8, 10, np.random.default_rng(0), n_modes=0)


class TestUniformStream:
    def test_range(self):
        s = uniform_stream(8, 1000, np.random.default_rng(0))
        assert s.min() >= 0 and s.max() < 256

    def test_roughly_uniform(self):
        s = uniform_stream(4, 8000, np.random.default_rng(0))
        counts = np.bincount(s, minlength=16)
        assert counts.min() > 300  # each value appears often

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            uniform_stream(0, 10, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            uniform_stream(4, 0, np.random.default_rng(0))
