"""API-contract tests: every public name is real and importable.

Guards against the usual bit-rot failure modes of a library this size:
``__all__`` entries that no longer exist, subpackages that fail to import,
and documented CLI experiments that the dispatcher does not know.
"""

import importlib
import pkgutil

import pytest

import repro

SUBMODULES = [
    "repro.config",
    "repro.errors",
    "repro.rng",
    "repro.datasets",
    "repro.io",
    "repro.cli",
    "repro.framework",
    "repro.fabric",
    "repro.netlist",
    "repro.timing",
    "repro.synthesis",
    "repro.characterization",
    "repro.models",
    "repro.core",
    "repro.circuits",
    "repro.dsp",
    "repro.eval",
]


class TestImports:
    @pytest.mark.parametrize("name", SUBMODULES)
    def test_submodule_imports(self, name):
        importlib.import_module(name)

    def test_every_module_in_package_imports(self):
        failures = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            try:
                importlib.import_module(info.name)
            except Exception as exc:  # pragma: no cover - report below
                failures.append((info.name, exc))
        assert not failures, failures

    @pytest.mark.parametrize("name", SUBMODULES)
    def test_all_entries_exist(self, name):
        mod = importlib.import_module(name)
        for entry in getattr(mod, "__all__", []):
            assert hasattr(mod, entry), f"{name}.__all__ lists missing {entry!r}"

    def test_top_level_all(self):
        for entry in repro.__all__:
            assert hasattr(repro, entry)


class TestCliContract:
    def test_cli_knows_every_figure_driver(self):
        from repro.cli import _FIGURES
        from repro.eval import figures

        for name in figures.__all__:
            assert name in _FIGURES, f"CLI missing driver {name!r}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2
