"""Tests for repro.eval.report."""

from repro.eval.report import format_value, render_series, render_table


class TestFormatValue:
    def test_small_floats_scientific(self):
        assert "e" in format_value(1.2e-5)

    def test_moderate_floats_compact(self):
        assert format_value(3.14159) == "3.142"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_ints_and_strings_passthrough(self):
        assert format_value(42) == "42"
        assert format_value("abc") == "abc"

    def test_bool(self):
        assert format_value(True) == "True"


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        out = render_table(["a", "bb"], [[1, 2.5], [3, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_column_alignment(self):
        out = render_table(["x"], [[1], [100000]])
        lines = out.splitlines()
        assert len(lines[0]) == len(lines[2])  # header width == row width

    def test_empty_rows(self):
        out = render_table(["x", "y"], [])
        assert "x" in out


class TestRenderSeries:
    def test_series_rendering(self):
        out = render_series("err", [1, 2], [0.1, 0.2], "f", "rate")
        assert "series: err" in out
        assert "f" in out and "rate" in out
