"""Tests for repro.eval.figures — every figure driver, tiny scale.

These exercise the drivers end to end and assert the paper's qualitative
shapes.  One shared tiny context keeps the wall-clock reasonable.
"""

import pytest

from repro.eval import figures, tables
from repro.eval.context import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.get(seed=42, scale=0.02, n_char_locations=1)


class TestFig1:
    def test_regimes_ordered(self, ctx):
        r = figures.fig1(ctx, n_samples=300, freq_step=30.0)
        assert r["fA_tool_mhz"] < r["fB_error_free_mhz"] < r["fC_meaningless_mhz"]

    def test_error_monotone_nondecreasing(self, ctx):
        r = figures.fig1(ctx, n_samples=300, freq_step=30.0)
        e = r["error_rate_percent"]
        assert all(a <= b + 1e-9 for a, b in zip(e, e[1:]))


class TestFig4:
    def test_two_locations_reported(self, ctx):
        r = figures.fig4(ctx, n_samples=800)
        assert set(r["locations"]) == {"loc 1", "loc 2"}

    def test_errors_present_at_320(self, ctx):
        r = figures.fig4(ctx, n_samples=800)
        rates = [v["error_rate"] for v in r["locations"].values()]
        assert max(rates) > 0

    def test_locations_differ(self, ctx):
        r = figures.fig4(ctx, n_samples=800)
        assert r["locations_differ"]


class TestFig5:
    def test_grid_dimensions(self, ctx):
        r = figures.fig5(ctx, n_samples=60, freqs_mhz=(280.0, 320.0, 360.0))
        assert r["variance_grid"].shape == (256, 3)

    def test_variance_grows_with_frequency(self, ctx):
        r = figures.fig5(ctx, n_samples=60, freqs_mhz=(280.0, 320.0, 360.0))
        m = r["mean_variance_per_freq"]
        assert m[-1] > m[0]

    def test_popcount_effect(self, ctx):
        r = figures.fig5(ctx, n_samples=60, freqs_mhz=(280.0, 320.0, 360.0))
        by_pop = r["mean_variance_by_popcount"]
        assert by_pop[8] > by_pop[1]


class TestFig6:
    def test_samples_cover_wordlengths(self, ctx):
        r = figures.fig6(ctx, n_runs=3)
        assert set(r["mean_le_by_wordlength"]) == set(
            ctx.settings.coeff_wordlengths
        )

    def test_area_monotone(self, ctx):
        r = figures.fig6(ctx, n_runs=3)
        means = [r["mean_le_by_wordlength"][wl] for wl in ctx.settings.coeff_wordlengths]
        assert means == sorted(means)


class TestFig7:
    def test_entropy_ordering(self, ctx):
        r = figures.fig7(ctx)
        es = [r["betas"][b]["entropy"] for b in (0.1, 1.0, 4.0)]
        assert es == sorted(es, reverse=True)

    def test_beta4_suppression(self, ctx):
        r = figures.fig7(ctx)
        assert r["betas"][4.0]["mass_ratio_max_min"] > r["betas"][0.1]["mass_ratio_max_min"]


class TestFig8:
    def test_rows_per_wordlength(self, ctx):
        r = figures.fig8(ctx, n_samples=300, freq_step=30.0)
        assert len(r["rows"]) == len(ctx.settings.coeff_wordlengths)

    def test_tool_below_datapath(self, ctx):
        r = figures.fig8(ctx, n_samples=300, freq_step=30.0)
        for row in r["rows"]:
            assert row["tool_fmax_mhz"] < row["datapath_fmax_mhz"]

    def test_fmax_decreases_with_wordlength(self, ctx):
        r = figures.fig8(ctx, n_samples=300, freq_step=30.0)
        tools = [row["tool_fmax_mhz"] for row in r["rows"]]
        assert tools == sorted(tools, reverse=True)

    def test_target_is_overclocking(self, ctx):
        r = figures.fig8(ctx, n_samples=300, freq_step=30.0)
        assert r["overclock_factor_vs_9bit_tool"] > 1.5


class TestFig9:
    def test_high_coverage(self, ctx):
        # At this tiny fit scale the sigma estimate itself is noisy; the
        # full-scale bench asserts the paper's "most points inside" more
        # tightly.
        r = figures.fig9(ctx, n_validation_runs=6)
        assert r["coverage"] >= 0.7

    def test_rows_have_predictions(self, ctx):
        r = figures.fig9(ctx, n_validation_runs=3)
        for row in r["rows"]:
            assert row["predicted_le"] > 0


class TestFig10:
    def test_three_domains_per_design(self, ctx):
        r = figures.fig10(ctx)
        assert len(r["rows"]) == ctx.settings.q
        for row in r["rows"]:
            assert row["predicted_mse"] > 0
            assert row["simulated_mse"] > 0
            assert row["actual_mse"] > 0

    def test_prediction_tracks_actual(self, ctx):
        r = figures.fig10(ctx)
        for row in r["rows"]:
            assert row["actual_mse"] < 50 * row["predicted_mse"] + 1e-3


class TestFig11:
    def test_klt_and_of_families(self, ctx):
        r = figures.fig11(ctx)
        assert len(r["klt_rows"]) == len(ctx.settings.coeff_wordlengths)
        assert len(r["of_rows"]) == ctx.settings.q

    def test_of_improves_over_klt(self, ctx):
        r = figures.fig11(ctx)
        assert r["geometric_mean_improvement"] > 1.0


class TestRuntimeTable:
    def test_paper_example(self, ctx):
        r = tables.runtime_model_table(ctx)
        assert abs(r["paper_example_seconds"] - 6240) / 6240 < 0.05

    def test_measured_counts(self, ctx):
        r = tables.runtime_model_table(ctx)
        assert r["n_vector_samplings"] == r["expected_vector_samplings"]
        assert r["measured_total_seconds"] > 0

    def test_fitted_model_exists(self, ctx):
        r = tables.runtime_model_table(ctx)
        assert r["fitted_model"] is not None


class TestTable1:
    def test_paper_settings_echoed(self):
        r = tables.table1()
        assert r["matches_paper"]
        assert r["paper"]["n_characterization"] == 4900

    def test_custom_settings_flagged(self, ctx):
        r = tables.table1(ctx.settings)
        assert not r["matches_paper"]


class TestHeadline:
    def test_three_operating_points(self, ctx):
        r = figures.headline(ctx)
        assert len(r["rows"]) == 3
        safe, klt_fast, of_fast = r["rows"]
        assert safe["freq_mhz"] < klt_fast["freq_mhz"]
        assert klt_fast["freq_mhz"] == of_fast["freq_mhz"]

    def test_throughput_gain_in_paper_regime(self, ctx):
        r = figures.headline(ctx)
        assert r["throughput_gain"] > 1.5

    def test_of_no_worse_than_klt_at_target(self, ctx):
        r = figures.headline(ctx)
        assert r["of_vs_klt_at_target_mse_ratio"] >= 1.0
