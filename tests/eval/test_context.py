"""Tests for repro.eval.context — the shared experiment context."""

import numpy as np

from repro.eval.context import ExperimentContext


class TestCaching:
    def test_same_key_same_instance(self):
        a = ExperimentContext.get(seed=7, scale=0.01, n_char_locations=1)
        b = ExperimentContext.get(seed=7, scale=0.01, n_char_locations=1)
        assert a is b

    def test_different_scale_different_instance(self):
        a = ExperimentContext.get(seed=7, scale=0.01, n_char_locations=1)
        b = ExperimentContext.get(seed=7, scale=0.011, n_char_locations=1)
        assert a is not b

    def test_device_serial_defaults_to_seed(self):
        ctx = ExperimentContext.get(seed=9, scale=0.01, n_char_locations=1)
        assert ctx.device.serial == 9

    def test_explicit_device_serial(self):
        ctx = ExperimentContext.get(
            seed=9, scale=0.01, device_serial=123, n_char_locations=1
        )
        assert ctx.device.serial == 123


class TestData:
    def test_train_test_split_sizes(self):
        ctx = ExperimentContext.get(seed=7, scale=0.01, n_char_locations=1)
        assert ctx.x_train.shape == (ctx.settings.p, ctx.settings.n_train)
        assert ctx.x_test.shape == (ctx.settings.p, ctx.settings.n_test)

    def test_data_in_unit_range(self):
        ctx = ExperimentContext.get(seed=7, scale=0.01, n_char_locations=1)
        assert np.abs(ctx.x_train).max() <= 1.0
        assert np.abs(ctx.x_test).max() <= 1.0


class TestLazyResults:
    def test_of_result_cached_per_beta(self):
        ctx = ExperimentContext.get(seed=8, scale=0.01, n_char_locations=1)
        a = ctx.of_result(beta=4.0)
        b = ctx.of_result(beta=4.0)
        assert a is b

    def test_default_beta_is_first_table_entry(self):
        ctx = ExperimentContext.get(seed=8, scale=0.01, n_char_locations=1)
        assert ctx.of_result().beta == ctx.settings.betas[0]

    def test_klt_designs_cached(self):
        ctx = ExperimentContext.get(seed=8, scale=0.01, n_char_locations=1)
        assert ctx.klt_designs() is ctx.klt_designs()
