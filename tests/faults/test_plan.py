"""FaultPlan/FaultSpec parsing, validation and injector determinism."""

import json

import pytest

from repro.errors import FaultPlanError
from repro.faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_defaults_fire_once_anywhere(self):
        s = FaultSpec(kind="crash")
        assert s.matches_shard(0, 0) and s.matches_shard(3, 16)
        assert not s.persistent

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_kind_constructs(self, kind):
        assert FaultSpec(kind=kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="meltdown")

    @pytest.mark.parametrize("times", [0, -2])
    def test_bad_times_rejected(self, times):
        with pytest.raises(FaultPlanError, match="times"):
            FaultSpec(kind="crash", times=times)

    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
    def test_bad_rate_rejected(self, rate):
        with pytest.raises(FaultPlanError, match="rate"):
            FaultSpec(kind="crash", rate=rate)

    def test_targeting(self):
        s = FaultSpec(kind="corrupt", li=1, start=4)
        assert s.matches_shard(1, 4)
        assert not s.matches_shard(0, 4)
        assert not s.matches_shard(1, 0)

    def test_roundtrip(self):
        s = FaultSpec(kind="hang", li=2, times=-1, hang_s=0.5)
        assert FaultSpec.from_dict(s.as_dict()) == s

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault-spec fields"):
            FaultSpec.from_dict({"kind": "crash", "severity": 9})


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="crash", li=0), FaultSpec(kind="corrupt", times=-1)),
            seed=7,
        )
        assert FaultPlan.from_json(json.dumps(plan.as_dict())) == plan

    def test_bare_spec_list(self):
        plan = FaultPlan.from_json('[{"kind": "crash"}]')
        assert plan.seed == 0 and len(plan.specs) == 1

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan fields"):
            FaultPlan.from_json('{"specs": [], "retries": 3}')

    def test_from_spec_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 3, "specs": [{"kind": "hang"}]}')
        plan = FaultPlan.from_spec(f"@{path}")
        assert plan.seed == 3 and plan.specs[0].kind == "hang"

    def test_from_spec_missing_file(self):
        with pytest.raises(FaultPlanError, match="cannot read fault plan"):
            FaultPlan.from_spec("@/nonexistent/plan.json")

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULTS": "  "}) is None
        plan = FaultPlan.from_env({"REPRO_FAULTS": '[{"kind": "crash"}]'})
        assert plan is not None and plan.specs[0].kind == "crash"

    def test_describe_mentions_every_spec(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="crash", li=0), FaultSpec(kind="hang", times=-1)),
            seed=5,
        )
        text = plan.describe()
        assert "crash" in text and "hang" in text and "persistent" in text


class TestInjectorDeterminism:
    def test_transient_fault_stops_after_times(self):
        inj = FaultInjector(FaultPlan(specs=(FaultSpec(kind="crash", times=2),)))
        assert inj.active(0, 0, 0) and inj.active(0, 0, 1)
        assert not inj.active(0, 0, 2)

    def test_persistent_fault_never_stops(self):
        inj = FaultInjector(FaultPlan(specs=(FaultSpec(kind="crash", times=-1),)))
        assert all(inj.active(0, 0, a) for a in range(10))

    def test_rate_thinning_is_deterministic(self):
        plan = FaultPlan(specs=(FaultSpec(kind="corrupt", rate=0.5),), seed=11)
        a = [bool(FaultInjector(plan).active(li, s, 0))
             for li in range(4) for s in range(8)]
        b = [bool(FaultInjector(plan).active(li, s, 0))
             for li in range(4) for s in range(8)]
        assert a == b
        assert any(a) and not all(a)  # rate=0.5 thins but does not silence

    def test_seed_changes_thinning_pattern(self):
        def pattern(seed):
            plan = FaultPlan(specs=(FaultSpec(kind="corrupt", rate=0.5),), seed=seed)
            inj = FaultInjector(plan)
            return [bool(inj.active(li, s, 0)) for li in range(4) for s in range(16)]

        assert pattern(1) != pattern(2)
