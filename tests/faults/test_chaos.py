"""Chaos suite: injected faults vs the hardened sweep engine.

The acceptance property throughout: a recovered sweep is *bit-identical*
to the fault-free serial sweep.  ``run_shard`` is a pure function of
``(device, plan, shard)`` — stimulus is pre-drawn and every capture
derives its generator from an explicit seed path — so retries can change
wall-clock and attempt counts but never a single number in E(m, f).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.characterization import characterize_multiplier
from repro.config import ResilienceSettings
from repro.errors import SweepFailedError
from repro.faults import FaultPlan, FaultSpec
from repro.parallel import PlacedDesignCache

#: Wait-free retries: the chaos suite exercises the retry *logic*, not
#: the backoff wall-clock.
FAST = ResilienceSettings(backoff_base_s=0.0, backoff_jitter=0.0)
FAST_DEGRADED = ResilienceSettings(
    backoff_base_s=0.0, backoff_jitter=0.0, allow_degraded=True
)


def _grids_equal(a, b) -> bool:
    return (
        np.array_equal(a.variance, b.variance)
        and np.array_equal(a.mean, b.mean)
        and np.array_equal(a.error_rate, b.error_rate)
    )


@pytest.fixture(scope="module")
def baseline(device, small_char_config):
    """The fault-free serial sweep every chaos run must reproduce."""
    return characterize_multiplier(device, 8, 8, small_char_config(), seed=3, jobs=1)


class TestTransientFaultRecovery:
    def test_single_crash_recovers_bit_identical(self, device, small_char_config, baseline):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", li=0, start=0, times=1),), seed=1)
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=1,
            resilience=FAST, faults=plan,
        )
        assert _grids_equal(chaos, baseline)
        assert chaos.outcome.status == "complete"
        assert not chaos.degraded
        assert (0, 0) in chaos.outcome.retried
        report = chaos.outcome.reports[0]
        assert report.attempts[0].outcome == "error"
        assert report.attempts[1].outcome == "ok"
        assert report.disposition == "recovered"

    def test_corrupt_result_detected_and_retried(self, device, small_char_config, baseline):
        plan = FaultPlan(specs=(FaultSpec(kind="corrupt", li=1, start=4, times=1),), seed=2)
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=1,
            resilience=FAST, faults=plan,
        )
        assert _grids_equal(chaos, baseline)
        assert chaos.outcome.status == "complete"
        [report] = [r for r in chaos.outcome.reports if (r.li, r.start) == (1, 4)]
        assert report.attempts[0].outcome == "invalid"
        assert report.disposition == "recovered"

    def test_crash_plus_poisoned_cache_entry(self, device, small_char_config, tmp_path, baseline):
        """The headline acceptance scenario: one-shot crash + one corrupt
        cache entry; the sweep completes with retries, bit-identical."""
        cfg = small_char_config()
        cache = PlacedDesignCache(tmp_path / "placed")
        characterize_multiplier(device, 8, 8, cfg, seed=3, jobs=1, cache=cache)
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="crash", li=0, start=0, times=1),
                FaultSpec(kind="poison-cache", li=1, start=0, times=1),
            ),
            seed=4,
        )
        warm = PlacedDesignCache(tmp_path / "placed")
        chaos = characterize_multiplier(
            device, 8, 8, cfg, seed=3, jobs=1, cache=warm,
            resilience=FAST, faults=plan,
        )
        assert _grids_equal(chaos, baseline)
        assert chaos.outcome.status == "complete"
        assert (0, 0) in chaos.outcome.retried
        # The poisoned entry was detected by the checksum layer and rebuilt
        # in place — a rejected load, not a wrong placement.
        assert warm.stats().corruptions >= 1

    def test_multi_attempt_fault_exhausts_then_recovers(self, device, small_char_config, baseline):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", li=0, start=8, times=2),), seed=5)
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=1,
            resilience=FAST, faults=plan,
        )
        assert _grids_equal(chaos, baseline)
        [report] = [r for r in chaos.outcome.reports if (r.li, r.start) == (0, 8)]
        assert report.n_attempts == 3  # two injected failures + the recovery
        assert report.disposition == "recovered"


class TestQuarantine:
    def test_persistent_fault_quarantines_exactly(self, device, small_char_config, baseline):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", li=0, start=4, times=-1),), seed=6)
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=1,
            resilience=FAST_DEGRADED, faults=plan,
        )
        assert chaos.outcome.status == "degraded"
        assert chaos.degraded
        assert chaos.outcome.quarantined == ((0, 4),)
        # Quarantined cells are NaN — never zeros, which would read as a
        # legitimate "no errors observed" statistic.
        assert np.all(np.isnan(chaos.variance[0, 4:8, :]))
        assert np.all(np.isnan(chaos.mean[0, 4:8, :]))
        assert np.all(np.isnan(chaos.error_rate[0, 4:8, :]))
        # Every other cell is bit-identical to the fault-free sweep.
        mask = np.ones_like(baseline.variance, dtype=bool)
        mask[0, 4:8, :] = False
        assert np.array_equal(chaos.variance[mask], baseline.variance[mask])
        assert np.array_equal(chaos.mean[mask], baseline.mean[mask])

    def test_persistent_fault_raises_without_allow_degraded(self, device, small_char_config):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", li=0, start=4, times=-1),), seed=6)
        with pytest.raises(SweepFailedError, match="quarantined") as exc:
            characterize_multiplier(
                device, 8, 8, small_char_config(), seed=3, jobs=1,
                resilience=FAST, faults=plan,
            )
        assert exc.value.outcome.quarantined == ((0, 4),)

    def test_everything_failing_is_failed_even_when_degraded_allowed(
        self, device, small_char_config
    ):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", times=-1),), seed=7)
        with pytest.raises(SweepFailedError, match="failed"):
            characterize_multiplier(
                device, 8, 8, small_char_config(), seed=3, jobs=1,
                resilience=FAST_DEGRADED, faults=plan,
            )

    def test_quarantine_attempt_budget_is_respected(self, device, small_char_config):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", li=1, start=0, times=-1),), seed=8)
        policy = ResilienceSettings(
            max_retries=3, backoff_base_s=0.0, backoff_jitter=0.0, allow_degraded=True
        )
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=1,
            resilience=policy, faults=plan,
        )
        [report] = [r for r in chaos.outcome.reports if (r.li, r.start) == (1, 0)]
        assert report.n_attempts == 1 + policy.max_retries
        assert report.disposition == "quarantined"


class TestChaosProperty:
    @settings(max_examples=5, deadline=None)
    @given(
        kind=st.sampled_from(["crash", "corrupt"]),
        li=st.integers(0, 1),
        start=st.sampled_from([0, 4, 8]),
        times=st.integers(1, 2),
        chaos_seed=st.integers(0, 2**16),
    )
    def test_any_transient_plan_recovers_bit_identical(
        self, device, small_char_config, baseline, kind, li, start, times, chaos_seed
    ):
        """Property: every transient fault plan within the retry budget
        yields a complete sweep bit-identical to the fault-free one, and
        quarantines nothing."""
        plan = FaultPlan(
            specs=(FaultSpec(kind=kind, li=li, start=start, times=times),),
            seed=chaos_seed,
        )
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=1,
            resilience=FAST, faults=plan,
        )
        assert _grids_equal(chaos, baseline)
        assert chaos.outcome.status == "complete"
        assert chaos.outcome.quarantined == ()
        assert set(chaos.outcome.retried) == {(li, start)}

    @settings(max_examples=3, deadline=None)
    @given(
        li=st.integers(0, 1),
        start=st.sampled_from([0, 4, 8]),
        chaos_seed=st.integers(0, 2**16),
    )
    def test_any_persistent_plan_quarantines_exactly_its_target(
        self, device, small_char_config, li, start, chaos_seed
    ):
        plan = FaultPlan(
            specs=(FaultSpec(kind="crash", li=li, start=start, times=-1),),
            seed=chaos_seed,
        )
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=1,
            resilience=FAST_DEGRADED, faults=plan,
        )
        assert chaos.outcome.status == "degraded"
        assert chaos.outcome.quarantined == ((li, start),)


class TestPoolChaos:
    @pytest.mark.slow
    def test_pool_crash_recovers_bit_identical(self, device, small_char_config, baseline):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", li=0, start=0, times=1),), seed=9)
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=2,
            resilience=FAST, faults=plan,
        )
        assert _grids_equal(chaos, baseline)
        assert chaos.outcome.status == "complete"
        assert (0, 0) in chaos.outcome.retried

    @pytest.mark.slow
    def test_hung_worker_times_out_and_falls_back_inline(
        self, device, small_char_config, baseline
    ):
        plan = FaultPlan(
            specs=(FaultSpec(kind="hang", li=0, start=0, times=1, hang_s=2.0),),
            seed=10,
        )
        policy = ResilienceSettings(
            shard_timeout_s=0.25, backoff_base_s=0.0, backoff_jitter=0.0
        )
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=2,
            resilience=policy, faults=plan,
        )
        assert _grids_equal(chaos, baseline)
        assert chaos.outcome.status == "complete"
        assert chaos.outcome.fallback_inline
        [report] = [r for r in chaos.outcome.reports if (r.li, r.start) == (0, 0)]
        assert any(a.outcome == "timeout" for a in report.attempts)


class TestOutcomePlumbing:
    def test_outcome_as_dict_is_json_ready(self, device, small_char_config):
        import json

        plan = FaultPlan(specs=(FaultSpec(kind="crash", li=0, start=0, times=1),), seed=1)
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=1,
            resilience=FAST, faults=plan,
        )
        data = json.loads(json.dumps(chaos.outcome.as_dict()))
        assert data["status"] == "complete"
        assert data["n_shards"] == len(chaos.outcome.reports)
        assert data["total_attempts"] > data["n_shards"]

    def test_saved_archive_round_trips_nan_cells(self, device, small_char_config, tmp_path):
        from repro.characterization import CharacterizationResult

        plan = FaultPlan(specs=(FaultSpec(kind="crash", li=0, start=4, times=-1),), seed=6)
        chaos = characterize_multiplier(
            device, 8, 8, small_char_config(), seed=3, jobs=1,
            resilience=FAST_DEGRADED, faults=plan,
        )
        path = tmp_path / "chaos.npz"
        chaos.save(path)
        loaded = CharacterizationResult.load(path)
        # The outcome is execution provenance, not data — it does not
        # survive the .npz round-trip, but the NaN cells do, and they are
        # enough to flag the archive as degraded.
        assert loaded.outcome is None
        assert loaded.degraded
        assert np.all(np.isnan(loaded.variance[0, 4:8, :]))
