"""CLI coverage for the ``faults`` subcommand and the repro-flow flags."""

import json

import pytest

from repro.cli import main as cli_main
from repro.cli_flow import main as flow_main

PLAN = '{"seed": 7, "specs": [{"kind": "crash", "li": 0, "start": 0, "times": 1}]}'


class TestFaultsSubcommand:
    def test_describe_text(self, capsys):
        assert cli_main(["faults", "describe", "--plan", PLAN]) == 0
        out = capsys.readouterr().out
        assert "crash" in out and "seed 7" in out

    def test_describe_json_round_trips(self, capsys):
        assert cli_main(["faults", "describe", "--plan", PLAN, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["seed"] == 7
        assert data["specs"][0]["kind"] == "crash"

    def test_validate_ok(self, capsys):
        assert cli_main(["faults", "validate", "--plan", PLAN]) == 0
        assert "valid fault plan" in capsys.readouterr().out

    def test_validate_rejects_bad_plan(self, capsys):
        rc = cli_main(["faults", "validate", "--plan", '[{"kind": "bogus"}]'])
        assert rc == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_plan_from_file(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text(PLAN)
        assert cli_main(["faults", "describe", "--plan", f"@{path}"]) == 0
        assert "crash" in capsys.readouterr().out

    def test_no_plan_anywhere_fails(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert cli_main(["faults", "describe"]) == 2
        assert "REPRO_FAULTS" in capsys.readouterr().err

    def test_env_plan_is_the_default(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", PLAN)
        assert cli_main(["faults", "describe"]) == 0
        assert "crash" in capsys.readouterr().out


@pytest.fixture
def workspace(tmp_path):
    ws = tmp_path / "ws"
    assert flow_main(["init", str(ws), "--serial", "3", "--scale", "0.01"]) == 0
    return ws


class TestFlowResilienceFlags:
    def test_degraded_characterize_and_status_banner(
        self, workspace, monkeypatch, capsys
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            '{"seed": 5, "specs": [{"kind": "crash", "li": 0, "start": 0, "times": -1}]}',
        )
        rc = flow_main(
            ["characterize", str(workspace), "--allow-degraded", "--max-retries", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "WARNING: sweep degraded" in out
        monkeypatch.delenv("REPRO_FAULTS")
        assert flow_main(["status", str(workspace)]) == 0
        out = capsys.readouterr().out
        assert "DEGRADED characterisation data" in out
        assert "quarantined" in out

    def test_persistent_fault_without_allow_degraded_fails(
        self, workspace, monkeypatch, capsys
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            '{"seed": 5, "specs": [{"kind": "crash", "li": 0, "start": 0, "times": -1}]}',
        )
        rc = flow_main(["characterize", str(workspace), "--max-retries", "0"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "quarantined" in err and "--allow-degraded" in err

    def test_clean_characterize_keeps_status_quiet(self, workspace, monkeypatch, capsys):
        # max_retries=0 restores fail-fast, so make sure no ambient chaos
        # plan (e.g. the check.sh chaos gate) leaks into this scenario.
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert flow_main(["characterize", str(workspace), "--max-retries", "0"]) == 0
        assert flow_main(["status", str(workspace)]) == 0
        out = capsys.readouterr().out
        assert "DEGRADED" not in out
