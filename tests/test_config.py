"""Tests for repro.config."""

import pytest

from repro.config import (
    TableISettings,
    TimingConfig,
    mhz_to_period_ns,
    period_ns_to_mhz,
)
from repro.errors import ConfigError


class TestUnitConversions:
    def test_mhz_to_period(self):
        assert mhz_to_period_ns(100.0) == pytest.approx(10.0)

    def test_period_to_mhz(self):
        assert period_ns_to_mhz(5.0) == pytest.approx(200.0)

    def test_roundtrip(self):
        assert period_ns_to_mhz(mhz_to_period_ns(310.0)) == pytest.approx(310.0)

    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_nonpositive_frequency_rejected(self, bad):
        with pytest.raises(ConfigError):
            mhz_to_period_ns(bad)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_period_rejected(self, bad):
        with pytest.raises(ConfigError):
            period_ns_to_mhz(bad)


class TestTimingConfig:
    def test_defaults_valid(self):
        cfg = TimingConfig()
        assert cfg.lut_delay_ns > 0
        assert cfg.tool_guard_band >= 1.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            TimingConfig(lut_delay_ns=-0.1)

    def test_guard_band_below_one_rejected(self):
        with pytest.raises(ConfigError):
            TimingConfig(tool_guard_band=0.9)

    def test_slow_corner_below_one_rejected(self):
        with pytest.raises(ConfigError):
            TimingConfig(slow_corner_factor=0.5)


class TestTableISettings:
    def test_paper_defaults(self):
        s = TableISettings()
        assert (s.p, s.k) == (6, 3)
        assert s.n_characterization == 4900
        assert s.n_train == 100
        assert s.n_test == 5000
        assert s.betas == (4.0, 8.0)
        assert s.q == 5
        assert s.clock_frequency_mhz == 310.0
        assert s.input_wordlength == 9
        assert s.coeff_wordlengths == tuple(range(3, 10))
        assert s.burn_in == 1000
        assert s.n_samples == 3000

    def test_k_greater_than_p_rejected(self):
        with pytest.raises(ConfigError):
            TableISettings(p=3, k=4)

    def test_zero_q_rejected(self):
        with pytest.raises(ConfigError):
            TableISettings(q=0)

    def test_nonpositive_beta_rejected(self):
        with pytest.raises(ConfigError):
            TableISettings(betas=(4.0, 0.0))

    def test_bad_wordlength_range_rejected(self):
        with pytest.raises(ConfigError):
            TableISettings(min_coeff_wordlength=5, max_coeff_wordlength=3)

    def test_scaled_reduces_counts(self):
        s = TableISettings().scaled(0.1)
        assert s.n_characterization == 490
        assert s.n_test == 500
        assert s.burn_in == 100
        assert s.n_samples == 300

    def test_scaled_keeps_structure(self):
        s = TableISettings().scaled(0.01)
        assert (s.p, s.k, s.q) == (6, 3, 5)
        assert s.clock_frequency_mhz == 310.0
        assert s.coeff_wordlengths == tuple(range(3, 10))

    def test_scaled_floors(self):
        s = TableISettings().scaled(1e-6)
        assert s.n_train >= 20
        assert s.burn_in >= 5
        assert s.n_samples >= 10

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            TableISettings().scaled(0.0)
