"""Tests for repro.netlist.adders."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.adders import (
    add_ripple_carry,
    add_ripple_carry_with_const,
    subtract_ripple,
)
from repro.netlist.core import Netlist


def _adder(width, cin=False):
    nl = Netlist()
    a = nl.add_input_bus("a", width)
    b = nl.add_input_bus("b", width)
    ci = nl.add_input_bus("ci", 1) if cin else None
    s, c = add_ripple_carry(nl, a, b, cin=None if ci is None else ci[0])
    nl.set_output_bus("s", s)
    nl.set_output_bus("c", [c])
    return nl.compile()


class TestRippleCarry:
    def test_exhaustive_4bit(self):
        c = _adder(4)
        a = np.repeat(np.arange(16), 16)
        b = np.tile(np.arange(16), 16)
        out = c.evaluate_ints(a=a, b=b)
        total = a + b
        assert np.array_equal(out["s"], total % 16)
        assert np.array_equal(out["c"], total // 16)

    def test_with_carry_in(self):
        c = _adder(4, cin=True)
        a = np.repeat(np.arange(16), 16)
        b = np.tile(np.arange(16), 16)
        out = c.evaluate_ints(a=a, b=b, ci=np.ones_like(a))
        total = a + b + 1
        assert np.array_equal(out["s"], total % 16)
        assert np.array_equal(out["c"], total // 16)

    @given(st.integers(0, 2**10 - 1), st.integers(0, 2**10 - 1))
    def test_property_10bit(self, av, bv):
        c = _adder(10)
        out = c.evaluate_ints(a=np.array([av]), b=np.array([bv]))
        assert out["s"][0] == (av + bv) % 1024
        assert out["c"][0] == (av + bv) // 1024

    def test_width_mismatch_rejected(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 3)
        b = nl.add_input_bus("b", 2)
        with pytest.raises(NetlistError):
            add_ripple_carry(nl, a, b)

    def test_empty_rejected(self):
        with pytest.raises(NetlistError):
            add_ripple_carry(Netlist(), [], [])


class TestConstAdd:
    @pytest.mark.parametrize("const", [0, 1, 5, 10, 15])
    def test_exhaustive_4bit(self, const):
        nl = Netlist()
        a = nl.add_input_bus("a", 4)
        kbits = [(const >> j) & 1 for j in range(4)]
        s, c = add_ripple_carry_with_const(nl, a, kbits)
        nl.set_output_bus("s", s)
        nl.set_output_bus("c", [c])
        comp = nl.compile()
        av = np.arange(16)
        out = comp.evaluate_ints(a=av)
        assert np.array_equal(out["s"], (av + const) % 16)
        assert np.array_equal(out["c"], (av + const) // 16)

    def test_zero_const_adds_no_luts(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 4)
        before = nl.n_nodes
        s, _ = add_ripple_carry_with_const(nl, a, [0, 0, 0, 0])
        nl.set_output_bus("s", s)
        # Constant-0 addition is free: only the const-0 carry node appears.
        assert nl.compile().n_luts == 0
        assert before == 4  # just the inputs existed

    def test_bad_const_bit_rejected(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        with pytest.raises(NetlistError):
            add_ripple_carry_with_const(nl, a, [0, 2])


class TestSubtract:
    def test_exhaustive_4bit(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 4)
        b = nl.add_input_bus("b", 4)
        d, borrow_n = subtract_ripple(nl, a, b)
        nl.set_output_bus("d", d)
        nl.set_output_bus("bn", [borrow_n])
        comp = nl.compile()
        av = np.repeat(np.arange(16), 16)
        bv = np.tile(np.arange(16), 16)
        out = comp.evaluate_ints(a=av, b=bv)
        assert np.array_equal(out["d"], (av - bv) % 16)
        # carry-out = 1 exactly when no borrow (a >= b)
        assert np.array_equal(out["bn"], (av >= bv).astype(int))
