"""Tests for repro.netlist.multipliers — functional correctness and the
structural properties the paper's observations rest on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.multipliers import (
    baugh_wooley_multiplier,
    sign_magnitude_multiplier,
    unsigned_array_multiplier,
)


class TestUnsigned:
    def test_exhaustive_4x4(self):
        c = unsigned_array_multiplier(4, 4).compile()
        a = np.repeat(np.arange(16), 16)
        b = np.tile(np.arange(16), 16)
        assert np.array_equal(c.evaluate_ints(a=a, b=b)["p"], a * b)

    def test_exhaustive_3x5(self):
        c = unsigned_array_multiplier(3, 5).compile()
        a = np.repeat(np.arange(8), 32)
        b = np.tile(np.arange(32), 8)
        assert np.array_equal(c.evaluate_ints(a=a, b=b)["p"], a * b)

    def test_random_9x9(self):
        c = unsigned_array_multiplier(9, 9).compile()
        rng = np.random.default_rng(0)
        a = rng.integers(0, 512, 3000)
        b = rng.integers(0, 512, 3000)
        assert np.array_equal(c.evaluate_ints(a=a, b=b)["p"], a * b)

    def test_width_one_operand(self):
        c = unsigned_array_multiplier(5, 1).compile()
        a = np.arange(32)
        assert np.array_equal(
            c.evaluate_ints(a=a, b=np.ones_like(a))["p"], a
        )
        assert np.array_equal(
            c.evaluate_ints(a=a, b=np.zeros_like(a))["p"], np.zeros_like(a)
        )

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_property_8x8(self, av, bv):
        c = _CACHED_8x8
        assert c.evaluate_ints(a=np.array([av]), b=np.array([bv]))["p"][0] == av * bv

    def test_output_width(self):
        c = unsigned_array_multiplier(6, 7).compile()
        assert c.output_buses["p"].shape[0] == 13

    def test_invalid_widths_rejected(self):
        with pytest.raises(NetlistError):
            unsigned_array_multiplier(0, 4)
        with pytest.raises(NetlistError):
            unsigned_array_multiplier(4, 40)

    def test_msb_is_deepest(self):
        """The paper's structural fact: MSbs sit on the longest paths."""
        c = unsigned_array_multiplier(8, 8).compile()
        levels = c.levels[c.output_buses["p"]]
        # The top informative bit is strictly deeper than the bottom bits.
        assert levels[-2] > levels[2]
        assert levels.argmax() >= len(levels) - 3

    def test_area_grows_with_wordlength(self):
        sizes = [unsigned_array_multiplier(9, wl).compile().n_luts for wl in range(3, 10)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 2 * sizes[0]


_CACHED_8x8 = unsigned_array_multiplier(8, 8).compile()


class TestBaughWooley:
    def test_exhaustive_4x4_signed(self):
        c = baugh_wooley_multiplier(4, 4).compile()
        a = np.repeat(np.arange(-8, 8), 16)
        b = np.tile(np.arange(-8, 8), 16)
        assert np.array_equal(c.evaluate_ints(signed_out=True, a=a, b=b)["p"], a * b)

    def test_random_mixed_widths(self):
        c = baugh_wooley_multiplier(7, 5).compile()
        rng = np.random.default_rng(1)
        a = rng.integers(-64, 64, 2000)
        b = rng.integers(-16, 16, 2000)
        assert np.array_equal(c.evaluate_ints(signed_out=True, a=a, b=b)["p"], a * b)

    def test_extremes(self):
        c = baugh_wooley_multiplier(4, 4).compile()
        a = np.array([-8, -8, 7, 7])
        b = np.array([-8, 7, -8, 7])
        assert np.array_equal(c.evaluate_ints(signed_out=True, a=a, b=b)["p"], a * b)

    def test_one_bit_rejected(self):
        with pytest.raises(NetlistError):
            baugh_wooley_multiplier(1, 4)


class TestSignMagnitude:
    def test_magnitude_and_sign(self):
        c = sign_magnitude_multiplier(6, 6).compile()
        rng = np.random.default_rng(2)
        a = rng.integers(0, 64, 500)
        b = rng.integers(0, 64, 500)
        sa = rng.integers(0, 2, 500)
        sb = rng.integers(0, 2, 500)
        out = c.evaluate_ints(a=a, b=b, sa=sa, sb=sb)
        assert np.array_equal(out["p"], a * b)
        assert np.array_equal(out["sp"], sa ^ sb)

    def test_same_core_topology_as_unsigned(self):
        sm = sign_magnitude_multiplier(8, 8).compile()
        um = unsigned_array_multiplier(8, 8).compile()
        # Sign handling costs exactly one XOR LUT.
        assert sm.n_luts == um.n_luts + 1

    def test_wb_one(self):
        c = sign_magnitude_multiplier(4, 1).compile()
        a = np.arange(16)
        out = c.evaluate_ints(a=a, b=np.ones_like(a), sa=np.zeros_like(a), sb=np.ones_like(a))
        assert np.array_equal(out["p"], a)
        assert np.all(out["sp"] == 1)
