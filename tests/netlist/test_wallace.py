"""Tests for repro.netlist.wallace — the tree-multiplier architecture."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.netlist.wallace import wallace_tree_multiplier


class TestCorrectness:
    def test_exhaustive_4x4(self):
        c = wallace_tree_multiplier(4, 4).compile()
        a = np.repeat(np.arange(16), 16)
        b = np.tile(np.arange(16), 16)
        assert np.array_equal(c.evaluate_ints(a=a, b=b)["p"], a * b)

    def test_exhaustive_5x3(self):
        c = wallace_tree_multiplier(5, 3).compile()
        a = np.repeat(np.arange(32), 8)
        b = np.tile(np.arange(8), 32)
        assert np.array_equal(c.evaluate_ints(a=a, b=b)["p"], a * b)

    def test_random_9x9(self):
        c = wallace_tree_multiplier(9, 9).compile()
        rng = np.random.default_rng(1)
        a = rng.integers(0, 512, 2500)
        b = rng.integers(0, 512, 2500)
        assert np.array_equal(c.evaluate_ints(a=a, b=b)["p"], a * b)

    def test_degenerate_widths(self):
        c = wallace_tree_multiplier(4, 1).compile()
        a = np.arange(16)
        assert np.array_equal(c.evaluate_ints(a=a, b=np.ones_like(a))["p"], a)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_property_8x8(self, av, bv):
        got = _W8.evaluate_ints(a=np.array([av]), b=np.array([bv]))["p"][0]
        assert got == av * bv

    def test_invalid_widths(self):
        with pytest.raises(NetlistError):
            wallace_tree_multiplier(0, 3)
        with pytest.raises(NetlistError):
            wallace_tree_multiplier(3, 40)


_W8 = wallace_tree_multiplier(8, 8).compile()


class TestArchitecture:
    def test_shallower_than_array(self):
        """The tree's raison d'etre: lower combinational depth."""
        array = unsigned_array_multiplier(8, 8).compile()
        assert _W8.depth < array.depth

    def test_costs_more_luts(self):
        array = unsigned_array_multiplier(8, 8).compile()
        assert _W8.n_luts >= array.n_luts

    def test_faster_on_fabric(self, flow):
        tree = flow.run(wallace_tree_multiplier(8, 8), anchor=(0, 0), seed=0)
        array = flow.run(unsigned_array_multiplier(8, 8), anchor=(0, 0), seed=0)
        assert tree.device_sta().fmax_mhz > array.device_sta().fmax_mhz

    def test_output_width(self):
        assert _W8.output_buses["p"].shape[0] == 16
