"""Hypothesis property tests across the arithmetic generators.

One strategy-driven sweep over widths and operand values, checking every
multiplier architecture against Python's exact integers — the bedrock the
whole error analysis stands on (a functional bug here would masquerade as
"over-clocking errors").
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.ccm import ccm_multiplier
from repro.netlist.mac import mac_block
from repro.netlist.multipliers import (
    baugh_wooley_multiplier,
    unsigned_array_multiplier,
)
from repro.netlist.wallace import wallace_tree_multiplier

# Compiling netlists is the expensive part; cache per geometry.
_CACHE: dict = {}


def _get(kind, *args):
    key = (kind.__name__,) + args
    if key not in _CACHE:
        _CACHE[key] = kind(*args).compile()
    return _CACHE[key]


class TestMultiplierEquivalence:
    @given(
        st.integers(2, 10),
        st.integers(2, 10),
        st.integers(0, 2**30),
    )
    @settings(max_examples=60, deadline=None)
    def test_array_and_tree_agree_with_python(self, wa, wb, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << wa, 40)
        b = rng.integers(0, 1 << wb, 40)
        array = _get(unsigned_array_multiplier, wa, wb)
        tree = _get(wallace_tree_multiplier, wa, wb)
        expected = a * b
        assert np.array_equal(array.evaluate_ints(a=a, b=b)["p"], expected)
        assert np.array_equal(tree.evaluate_ints(a=a, b=b)["p"], expected)

    @given(
        st.integers(2, 9),
        st.integers(2, 9),
        st.integers(0, 2**30),
    )
    @settings(max_examples=40, deadline=None)
    def test_baugh_wooley_signed(self, wa, wb, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-(1 << (wa - 1)), 1 << (wa - 1), 40)
        b = rng.integers(-(1 << (wb - 1)), 1 << (wb - 1), 40)
        bw = _get(baugh_wooley_multiplier, wa, wb)
        assert np.array_equal(
            bw.evaluate_ints(signed_out=True, a=a, b=b)["p"], a * b
        )

    @given(st.integers(0, 1023), st.integers(2, 9))
    @settings(max_examples=40, deadline=None)
    def test_ccm_matches_constant_multiply(self, coeff, w_in):
        c = _get(ccm_multiplier, coeff, w_in)
        x = np.arange(0, 1 << w_in, max(1, (1 << w_in) // 16))
        assert np.array_equal(c.evaluate_ints(x=x)["p"], coeff * x)

    @given(st.integers(2, 9), st.integers(2, 9), st.integers(0, 2**30))
    @settings(max_examples=30, deadline=None)
    def test_mac_accumulates(self, wd, wc, seed):
        rng = np.random.default_rng(seed)
        m = _get(mac_block, wd, wc)
        w_acc = wd + wc + 2
        a = rng.integers(0, 1 << wd, 30)
        b = rng.integers(0, 1 << wc, 30)
        acc = rng.integers(0, 1 << w_acc, 30)
        out = m.evaluate_ints(a=a, b=b, acc=acc)
        assert np.array_equal(out["acc_out"], (acc + a * b) % (1 << w_acc))
