"""Tests for repro.netlist.core — DAG construction and evaluation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.core import (
    Netlist,
    bits_from_ints,
    ints_from_bits,
)


class TestBitPacking:
    def test_bits_lsb_first(self):
        bits = bits_from_ints([6], 4)
        assert bits.tolist() == [[0, 1, 1, 0]]

    def test_roundtrip_unsigned(self):
        vals = np.array([0, 1, 2, 254, 255])
        assert np.array_equal(ints_from_bits(bits_from_ints(vals, 8)), vals)

    def test_negative_twos_complement(self):
        bits = bits_from_ints([-1], 4)
        assert bits.tolist() == [[1, 1, 1, 1]]
        assert ints_from_bits(bits, signed=True).tolist() == [-1]

    @given(st.lists(st.integers(-256, 255), min_size=1, max_size=50))
    def test_roundtrip_signed_property(self, vals):
        arr = np.asarray(vals)
        bits = bits_from_ints(arr, 9)
        assert np.array_equal(ints_from_bits(bits, signed=True), arr)

    @given(
        st.integers(min_value=1, max_value=63).flatmap(
            lambda w: st.tuples(
                st.just(w),
                st.lists(
                    st.integers(0, (1 << w) - 1), min_size=1, max_size=20
                ),
            )
        )
    )
    def test_roundtrip_unsigned_any_width(self, w_vals):
        w, vals = w_vals
        arr = np.asarray(vals)
        bits = bits_from_ints(arr, w)
        assert bits.shape == (len(vals), w)
        assert np.array_equal(ints_from_bits(bits), arr)

    @given(
        st.integers(min_value=1, max_value=64).flatmap(
            lambda w: st.tuples(
                st.just(w),
                st.lists(
                    st.integers(-(1 << (w - 1)), (1 << (w - 1)) - 1),
                    min_size=1,
                    max_size=20,
                ),
            )
        )
    )
    def test_roundtrip_signed_any_width(self, w_vals):
        w, vals = w_vals
        arr = np.asarray(vals)
        bits = bits_from_ints(arr, w)
        assert np.array_equal(ints_from_bits(bits, signed=True), arr)

    @pytest.mark.parametrize("w", [1, 63, 64])
    def test_signed_boundaries_roundtrip(self, w):
        lo, hi = -(1 << (w - 1)), (1 << (w - 1)) - 1
        arr = np.array([lo, lo + 1, -1, 0, hi - 1, hi] if w > 1 else [lo, hi])
        bits = bits_from_ints(arr, w)
        assert np.array_equal(ints_from_bits(bits, signed=True), arr)

    def test_width_one_unsigned(self):
        arr = np.array([0, 1, 1, 0])
        assert np.array_equal(
            ints_from_bits(bits_from_ints(arr, 1)), arr
        )

    def test_unsigned_width_63_boundary(self):
        hi = (1 << 63) - 1
        arr = np.array([0, 1, hi - 1, hi], dtype=np.uint64).astype(np.int64)
        # values fit int64 exactly at width 63
        assert np.array_equal(ints_from_bits(bits_from_ints(arr, 63)), arr)

    def test_carrier_overflow_rejected(self):
        with pytest.raises(NetlistError):
            bits_from_ints([0], 65)
        # unsigned width 64 cannot round-trip through the int64 carrier
        with pytest.raises(NetlistError, match="int64 carrier"):
            ints_from_bits(bits_from_ints([0], 64))

    def test_zero_width_rejected(self):
        with pytest.raises(NetlistError):
            bits_from_ints([1], 0)

    def test_ints_from_bits_needs_2d(self):
        with pytest.raises(NetlistError):
            ints_from_bits(np.zeros(4, dtype=np.uint8))


class TestConstruction:
    def test_duplicate_input_bus_rejected(self):
        nl = Netlist()
        nl.add_input_bus("a", 2)
        with pytest.raises(NetlistError):
            nl.add_input_bus("a", 2)

    def test_bad_const_rejected(self):
        with pytest.raises(NetlistError):
            Netlist().add_const(2)

    def test_forward_reference_rejected(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        with pytest.raises(NetlistError):
            nl.add_lut(0b10, (a[0] + 99,))

    def test_truth_table_out_of_range_rejected(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        with pytest.raises(NetlistError):
            nl.add_lut(5, (a[0],))  # 1-input LUT has 4 possible tables

    def test_arity_limit(self):
        nl = Netlist()
        bits = nl.add_input_bus("a", 5)
        with pytest.raises(NetlistError):
            nl.add_lut(0, tuple(bits))

    def test_no_outputs_invalid(self):
        nl = Netlist()
        nl.add_input_bus("a", 1)
        with pytest.raises(NetlistError):
            nl.validate()

    def test_duplicate_output_rejected(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        nl.set_output_bus("o", [a[0]])
        with pytest.raises(NetlistError):
            nl.set_output_bus("o", [a[0]])


class TestGatesEvaluate:
    @pytest.mark.parametrize(
        "gate,table",
        [
            ("AND", [0, 0, 0, 1]),
            ("OR", [0, 1, 1, 1]),
            ("XOR", [0, 1, 1, 0]),
            ("NAND", [1, 1, 1, 0]),
            ("XNOR", [1, 0, 0, 1]),
        ],
    )
    def test_two_input_gates(self, gate, table):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        b = nl.add_input_bus("b", 1)
        out = getattr(nl, gate)(a[0], b[0])
        nl.set_output_bus("o", [out])
        c = nl.compile()
        av = np.array([0, 1, 0, 1])
        bv = np.array([0, 0, 1, 1])
        got = c.evaluate_ints(a=av, b=bv)["o"]
        assert got.tolist() == table

    def test_not(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        nl.set_output_bus("o", [nl.NOT(a[0])])
        got = nl.compile().evaluate_ints(a=np.array([0, 1]))["o"]
        assert got.tolist() == [1, 0]

    def test_mux(self):
        nl = Netlist()
        d0 = nl.add_input_bus("d0", 1)
        d1 = nl.add_input_bus("d1", 1)
        s = nl.add_input_bus("s", 1)
        nl.set_output_bus("o", [nl.MUX(d0[0], d1[0], s[0])])
        c = nl.compile()
        got = c.evaluate_ints(
            d0=np.array([1, 1, 0, 0]), d1=np.array([0, 0, 1, 1]), s=np.array([0, 1, 0, 1])
        )["o"]
        assert got.tolist() == [1, 0, 0, 1]

    def test_full_adder_truth(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        b = nl.add_input_bus("b", 1)
        ci = nl.add_input_bus("ci", 1)
        s, c = nl.full_adder(a[0], b[0], ci[0])
        nl.set_output_bus("s", [s])
        nl.set_output_bus("c", [c])
        comp = nl.compile()
        av, bv, cv = np.meshgrid([0, 1], [0, 1], [0, 1], indexing="ij")
        out = comp.evaluate_ints(a=av.ravel(), b=bv.ravel(), ci=cv.ravel())
        total = av.ravel() + bv.ravel() + cv.ravel()
        assert np.array_equal(out["s"], total % 2)
        assert np.array_equal(out["c"], total // 2)

    def test_constants(self):
        nl = Netlist()
        nl.add_input_bus("a", 1)
        nl.set_output_bus("o", [nl.add_const(1), nl.add_const(0)])
        got = nl.compile().evaluate_ints(a=np.array([0, 1]))["o"]
        assert got.tolist() == [1, 1]


class TestStatsAndCompile:
    def test_stats(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        x = nl.AND(a[0], a[1])
        y = nl.NOT(x)
        nl.set_output_bus("o", [y])
        s = nl.stats()
        assert s.n_luts == 2
        assert s.n_inputs == 2
        assert s.depth == 2
        assert s.logic_elements == 2

    def test_levels_monotone_along_paths(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        x = nl.XOR(a[0], a[1])
        y = nl.AND(x, a[0])
        nl.set_output_bus("o", [y])
        c = nl.compile()
        assert c.levels[y] > c.levels[x] > 0

    def test_missing_input_bus_rejected(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        nl.add_input_bus("b", 1)
        nl.set_output_bus("o", [a[0]])
        c = nl.compile()
        with pytest.raises(NetlistError):
            c.evaluate({"a": np.zeros((2, 1), dtype=np.uint8)})

    def test_wrong_width_rejected(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        nl.set_output_bus("o", [a[0]])
        c = nl.compile()
        with pytest.raises(NetlistError):
            c.evaluate({"a": np.zeros((2, 3), dtype=np.uint8)})

    def test_unknown_bus_in_evaluate_ints(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        nl.set_output_bus("o", [a[0]])
        c = nl.compile()
        with pytest.raises(NetlistError):
            c.evaluate_ints(zz=np.array([1]))


class TestValidateRegressions:
    """validate() must catch hand-assembled breakage compile() relies on."""

    def _ha(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        b = nl.add_input_bus("b", 1)
        s, c = nl.half_adder(a[0], b[0])
        nl.set_output_bus("s", [s])
        nl.set_output_bus("c", [c])
        return nl

    def test_wide_truth_table_rejected(self):
        nl = self._ha()
        nl._tts[2] = 1 << 4  # arity-2 LUT holds at most a 4-row table
        with pytest.raises(NetlistError, match="wider"):
            nl.validate()

    def test_self_referential_fanin_rejected(self):
        nl = self._ha()
        nl._fanins[3] = (3, 3)
        with pytest.raises(NetlistError, match="own fanin"):
            nl.validate()

    def test_forward_fanin_rejected(self):
        nl = self._ha()
        nl._fanins[2] = (3, 0)  # node 2 consuming node 3
        with pytest.raises(NetlistError, match="node 2 fanin 3 is a forward reference"):
            nl.validate()

    def test_non_lut_fanin_rejected(self):
        # A cycle threaded through an input node must not hide from the
        # LUT-only checks: sources may not have fanins at all.
        nl = self._ha()
        nl._fanins[0] = (2,)
        with pytest.raises(NetlistError, match="non-LUT node 0 has fanins"):
            nl.validate()

    def test_empty_output_bus_rejected(self):
        nl = self._ha()
        nl.output_buses["s"] = []
        with pytest.raises(NetlistError, match="empty"):
            nl.validate()


class TestConstDedup:
    def test_same_value_same_node(self):
        nl = Netlist()
        assert nl.add_const(1) == nl.add_const(1)
        assert nl.add_const(0) != nl.add_const(1)

    def test_const_value_lookup(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 1)
        one = nl.add_const(1)
        assert nl.const_value(one) == 1
        assert nl.const_value(a[0]) is None
        with pytest.raises(NetlistError):
            nl.const_value(99)


class TestSharedLuts:
    def test_identical_lut_reused(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        x = nl.add_lut_shared(0b0110, (a[0], a[1]))
        assert nl.add_lut_shared(0b0110, (a[0], a[1])) == x

    def test_different_fanin_order_not_merged(self):
        # Sharing is purely structural; canonicalisation is the linter's job.
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        x = nl.add_lut_shared(0b0110, (a[0], a[1]))
        assert nl.add_lut_shared(0b0110, (a[1], a[0])) != x


class TestPruneDangling:
    def test_removes_unreachable_nodes(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        keep = nl.XOR(a[0], a[1])
        nl.AND(a[0], a[1])  # dead
        nl.add_const(1)  # dead
        nl.set_output_bus("o", [keep])
        assert nl.prune_dangling() == 2
        assert nl.n_nodes == 3
        got = nl.compile().evaluate_ints(a=np.array([0, 1, 2, 3]))["o"]
        assert got.tolist() == [0, 1, 1, 0]

    def test_noop_on_live_netlist(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        nl.set_output_bus("o", [nl.XOR(a[0], a[1])])
        assert nl.prune_dangling() == 0

    def test_inputs_always_kept(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        nl.set_output_bus("o", [nl.NOT(a[0])])  # a[1] unused
        assert nl.prune_dangling() == 0
        assert nl.input_buses["a"] == a

    def test_caches_remapped(self):
        nl = Netlist()
        a = nl.add_input_bus("a", 2)
        nl.OR(a[0], a[1])  # dead; shifts every id behind it on prune
        keep = nl.add_lut_shared(0b0110, (a[0], a[1]))
        one = nl.add_const(1)
        nl.set_output_bus("o", [keep, one])
        assert nl.prune_dangling() == 1
        # Dedup/CSE caches must follow the renumbering.
        assert nl.add_const(1) == nl.output_buses["o"][1]
        assert nl.add_lut_shared(0b0110, tuple(nl.input_buses["a"])) == \
            nl.output_buses["o"][0]
