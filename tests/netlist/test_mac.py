"""Tests for repro.netlist.mac."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.netlist.mac import mac_block


class TestMac:
    def test_multiply_accumulate(self):
        c = mac_block(9, 6).compile()
        rng = np.random.default_rng(0)
        a = rng.integers(0, 512, 500)
        b = rng.integers(0, 64, 500)
        acc = rng.integers(0, 1 << 16, 500)
        out = c.evaluate_ints(a=a, b=b, acc=acc)
        assert np.array_equal(out["p"], a * b)
        assert np.array_equal(out["acc_out"], (acc + a * b) % (1 << 17))

    def test_accumulator_wraps_modular(self):
        c = mac_block(4, 4, w_acc=8).compile()
        out = c.evaluate_ints(
            a=np.array([15]), b=np.array([15]), acc=np.array([255])
        )
        assert out["acc_out"][0] == (255 + 225) % 256

    def test_custom_acc_width(self):
        c = mac_block(4, 4, w_acc=12).compile()
        assert c.output_buses["acc_out"].shape[0] == 12

    def test_acc_narrower_than_product_rejected(self):
        with pytest.raises(NetlistError):
            mac_block(8, 8, w_acc=10)

    def test_single_bit_coeff(self):
        c = mac_block(5, 1).compile()
        a = np.arange(32)
        out = c.evaluate_ints(a=a, b=np.ones_like(a), acc=np.zeros_like(a))
        assert np.array_equal(out["p"], a)

    def test_invalid_widths_rejected(self):
        with pytest.raises(NetlistError):
            mac_block(0, 3)

    def test_area_exceeds_bare_multiplier(self):
        from repro.netlist.multipliers import unsigned_array_multiplier

        mac = mac_block(9, 5).compile().n_luts
        mult = unsigned_array_multiplier(9, 5).compile().n_luts
        assert mac > mult
