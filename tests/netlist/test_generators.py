"""Tests for repro.netlist.generators — the DUT registry."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.netlist.generators import GENERATORS, generate, register_generator


class TestRegistry:
    def test_known_generators_present(self):
        assert {
            "unsigned_multiplier",
            "baugh_wooley_multiplier",
            "sign_magnitude_multiplier",
            "ccm",
            "mac",
        } <= set(GENERATORS)

    def test_generate_by_name(self):
        nl = generate("unsigned_multiplier", 4, 4)
        c = nl.compile()
        assert c.evaluate_ints(a=np.array([5]), b=np.array([7]))["p"][0] == 35

    def test_unknown_name_rejected(self):
        with pytest.raises(NetlistError):
            generate("nope")

    def test_register_and_use(self):
        def tiny(width):
            from repro.netlist.core import Netlist

            nl = Netlist("tiny")
            a = nl.add_input_bus("a", width)
            nl.set_output_bus("o", [nl.NOT(a[0])])
            return nl

        name = "tiny-test-gen"
        if name in GENERATORS:  # idempotent across re-runs in one session
            del GENERATORS[name]
        register_generator(name, tiny)
        nl = generate(name, 2)
        assert nl.compile().n_luts == 1
        del GENERATORS[name]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(NetlistError):
            register_generator("ccm", lambda: None)
