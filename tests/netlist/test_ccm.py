"""Tests for repro.netlist.ccm — CSD recoding and CCM generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.ccm import ccm_multiplier, csd_digits


class TestCSD:
    @given(st.integers(0, 100000))
    def test_value_preserved(self, v):
        digits = csd_digits(v)
        assert sum(d << i for i, d in enumerate(digits)) == v

    @given(st.integers(0, 100000))
    def test_no_adjacent_nonzeros(self, v):
        digits = csd_digits(v)
        for a, b in zip(digits, digits[1:]):
            assert not (a != 0 and b != 0)

    def test_digits_in_range(self):
        for v in (0, 1, 7, 170, 255, 2**14 - 1):
            assert set(csd_digits(v)) <= {-1, 0, 1}

    def test_negative_rejected(self):
        with pytest.raises(NetlistError):
            csd_digits(-1)

    def test_csd_sparser_than_binary(self):
        # 255 = 100000001̄ in CSD: two non-zeros instead of eight.
        nz = sum(1 for d in csd_digits(255) if d)
        assert nz == 2


class TestCCM:
    @pytest.mark.parametrize("coeff", [0, 1, 2, 3, 5, 7, 11, 22, 85, 170, 222, 255, 511])
    def test_correct_product(self, coeff):
        c = ccm_multiplier(coeff, 9).compile()
        rng = np.random.default_rng(coeff)
        x = rng.integers(0, 512, 300)
        assert np.array_equal(c.evaluate_ints(x=x)["p"], coeff * x)

    def test_exhaustive_small(self):
        c = ccm_multiplier(13, 5).compile()
        x = np.arange(32)
        assert np.array_equal(c.evaluate_ints(x=x)["p"], 13 * x)

    def test_zero_coefficient_is_free(self):
        c = ccm_multiplier(0, 8).compile()
        assert c.n_luts == 0
        assert np.array_equal(
            c.evaluate_ints(x=np.arange(10))["p"], np.zeros(10, dtype=int)
        )

    def test_power_of_two_is_free(self):
        # A pure shift needs no logic.
        c = ccm_multiplier(8, 6).compile()
        assert c.n_luts == 0

    def test_area_depends_on_coefficient(self):
        """The CCM scaling problem the paper fixes with generic multipliers:
        structure (and thus characterisation) is per-coefficient."""
        sparse = ccm_multiplier(128, 9).compile().n_luts
        dense = ccm_multiplier(365, 9).compile().n_luts  # 101101101b
        assert dense > sparse

    def test_invalid_args_rejected(self):
        with pytest.raises(NetlistError):
            ccm_multiplier(-1, 8)
        with pytest.raises(NetlistError):
            ccm_multiplier(5, 0)

    @given(st.integers(0, 511))
    @settings(max_examples=25, deadline=None)
    def test_property_9bit_coeffs(self, coeff):
        c = ccm_multiplier(coeff, 6).compile()
        x = np.arange(0, 64, 7)
        assert np.array_equal(c.evaluate_ints(x=x)["p"], coeff * x)
