"""Tests for repro.io — design persistence."""

import json

import numpy as np
import pytest

from repro.core.klt import klt_reference_design
from repro.datasets import low_rank_gaussian
from repro.errors import DesignError
from repro.io import load_design, load_designs, save_design, save_designs


@pytest.fixture()
def design():
    x = low_rank_gaussian(6, 3, 100, np.random.default_rng(0))
    d = klt_reference_design(x, 3, 6, 9, 310.0, area_le=420.0)
    d.metadata["objective_t"] = 0.001
    return d


class TestSingleDesign:
    def test_roundtrip(self, design, tmp_path):
        p = tmp_path / "d.json"
        save_design(design, p)
        loaded = load_design(p)
        assert np.allclose(loaded.values, design.values)
        assert np.array_equal(loaded.magnitudes, design.magnitudes)
        assert loaded.wordlengths == design.wordlengths
        assert loaded.freq_mhz == design.freq_mhz
        assert loaded.area_le == design.area_le
        assert loaded.method == design.method
        assert loaded.metadata["objective_t"] == pytest.approx(0.001)

    def test_file_is_json(self, design, tmp_path):
        p = tmp_path / "d.json"
        save_design(design, p)
        payload = json.loads(p.read_text())
        assert payload["format_version"] == 1

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DesignError):
            load_design(tmp_path / "missing.json")

    def test_bad_version_rejected(self, design, tmp_path):
        p = tmp_path / "d.json"
        save_design(design, p)
        payload = json.loads(p.read_text())
        payload["format_version"] = 99
        p.write_text(json.dumps(payload))
        with pytest.raises(DesignError):
            load_design(p)


class TestDesignList:
    def test_roundtrip(self, design, tmp_path):
        p = tmp_path / "ds.json"
        save_designs([design, design.with_area(10.0)], p)
        loaded = load_designs(p)
        assert len(loaded) == 2
        assert loaded[1].area_le == 10.0

    def test_empty_list(self, tmp_path):
        p = tmp_path / "empty.json"
        save_designs([], p)
        assert load_designs(p) == []

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DesignError):
            load_designs(tmp_path / "missing.json")
