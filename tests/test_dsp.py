"""Tests for repro.dsp — the embedded DSP-block multiplier extension."""

import numpy as np
import pytest

from repro.characterization import CharacterizationConfig
from repro.dsp import DspBlockModel, characterize_dsp_multiplier
from repro.errors import CharacterizationError, TimingError
from repro.models.error_model import build_error_model
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.synthesis import SynthesisFlow


class TestBlockModel:
    def test_slow_clock_is_exact(self, device):
        block = DspBlockModel(device, width=18)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 1 << 18, 300)
        b = rng.integers(0, 1 << 18, 300)
        run = block.run(a, b, 100.0, np.random.default_rng(1))
        assert run.error_rate == 0.0
        assert np.array_equal(run.captured, (a * b)[1:])

    def test_overclocked_block_errs(self, device):
        block = DspBlockModel(device, width=18)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 1 << 18, 500)
        b = rng.integers(0, 1 << 18, 500)
        fast = block.sta_fmax_mhz() * 1.4
        run = block.run(a, b, fast, np.random.default_rng(1))
        assert run.error_rate > 0

    def test_faster_than_lut_multiplier(self, device):
        """Paper Sec. VI: embedded multipliers are faster at large widths."""
        lut = SynthesisFlow(device).run(
            unsigned_array_multiplier(9, 9), anchor=(0, 0), seed=0
        )
        block = DspBlockModel(device, width=18, location=(0, 0))
        assert block.sta_fmax_mhz() > lut.device_sta().fmax_mhz

    def test_delay_does_not_shrink_with_width(self, device):
        wide = DspBlockModel(device, width=18)
        narrow = DspBlockModel(device, width=4)
        assert narrow.intrinsic_delay_ns == wide.intrinsic_delay_ns

    def test_location_changes_delay(self, device):
        a = DspBlockModel(device, location=(0, 0))
        b = DspBlockModel(device, location=(40, 40))
        assert a.intrinsic_delay_ns != b.intrinsic_delay_ns

    def test_width_validation(self, device):
        with pytest.raises(TimingError):
            DspBlockModel(device, width=19)
        with pytest.raises(TimingError):
            DspBlockModel(device, width=0)

    def test_operand_range_enforced(self, device):
        block = DspBlockModel(device, width=4)
        with pytest.raises(TimingError):
            block.settle_times(np.array([0, 16]), np.array([0, 1]))

    def test_unchanged_product_settles_instantly(self, device):
        block = DspBlockModel(device, width=8)
        settle = block.settle_times(np.array([5, 5, 7]), np.array([3, 3, 3]))
        assert settle[0] == 0.0
        assert settle[1] > 0.0


class TestDspCharacterization:
    @pytest.fixture(scope="class")
    def result(self, device):
        cfg = CharacterizationConfig(
            freqs_mhz=(300.0, 420.0, 480.0, 540.0),
            n_samples=150,
            multiplicands=tuple(range(0, 256, 16)),
            n_locations=2,
        )
        return characterize_dsp_multiplier(device, 9, 8, cfg, seed=0)

    def test_grid_shapes(self, result):
        assert result.variance.shape == (2, 16, 4)

    def test_errors_cumulative(self, result):
        means = result.variance.mean(axis=(0, 1))
        assert means[-1] >= means[0]
        assert means[-1] > 0

    def test_feeds_error_model(self, result):
        model = build_error_model(result)
        assert model.variance_at(result.freqs_mhz[-1]).shape == (16,)

    def test_width_cap_enforced(self, device):
        cfg = CharacterizationConfig(freqs_mhz=(300.0,), n_samples=60, multiplicands=(1,))
        with pytest.raises(CharacterizationError):
            characterize_dsp_multiplier(device, 19, 8, cfg)

    def test_higher_error_onset_than_lut(self, device):
        """The DSP block stays error-free well past the LUT multiplier's
        onset — the paper's rationale for treating it separately."""
        from repro.characterization import characterize_multiplier

        cfg = CharacterizationConfig(
            freqs_mhz=(360.0,), n_samples=120, multiplicands=(255,), n_locations=1
        )
        lut = characterize_multiplier(device, 8, 8, cfg, seed=0)
        dsp = characterize_dsp_multiplier(device, 8, 8, cfg, seed=0)
        assert lut.variance.max() > 0  # LUT already erring at 360
        assert dsp.variance.max() == 0  # hard macro still clean
