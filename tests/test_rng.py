"""Tests for repro.rng — the deterministic seed tree."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import SeedTree, derive_seed, rng_from


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_path_sensitivity(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "a", "c")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_no_path_concatenation_collision(self):
        # ("ab",) must differ from ("a", "b") — separator matters.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
    def test_in_63bit_range(self, root, name):
        s = derive_seed(root, name)
        assert 0 <= s < 2**63


class TestSeedTree:
    def test_rng_reproducible(self):
        a = SeedTree(7).rng("x").integers(1 << 40)
        b = SeedTree(7).rng("x").integers(1 << 40)
        assert a == b

    def test_child_prefix_equivalent_to_path(self):
        t = SeedTree(7)
        assert t.child("a").seed("b") == t.seed("a", "b")

    def test_children_independent(self):
        t = SeedTree(7)
        xs = t.rng("one").normal(size=100)
        ys = t.rng("two").normal(size=100)
        # Streams must differ (same would mean a collision).
        assert not np.allclose(xs, ys)

    def test_rng_from_matches_tree(self):
        assert rng_from(3, "p", "q").integers(1 << 30) == SeedTree(3).rng(
            "p", "q"
        ).integers(1 << 30)

    def test_adding_consumer_does_not_shift_existing(self):
        # Unlike positional spawning, deriving "b" must not change "a".
        t = SeedTree(9)
        before = t.rng("a").integers(1 << 40)
        _ = t.rng("b").integers(1 << 40)
        after = SeedTree(9).rng("a").integers(1 << 40)
        assert before == after
