"""Tests for repro.circuits.datapath."""

import numpy as np
import pytest

from repro.circuits.datapath import ProjectionDatapath
from repro.core.klt import klt_reference_design
from repro.core.quantize import quantize_data
from repro.datasets import low_rank_gaussian
from repro.errors import DesignError


@pytest.fixture(scope="module")
def design():
    x = low_rank_gaussian(6, 3, 150, np.random.default_rng(0), noise=0.02)
    return klt_reference_design(x, 3, 5, 9, 310.0)


@pytest.fixture(scope="module")
def datapath(design, device):
    return ProjectionDatapath(design, device, anchor=(0, 0), seed=0)


class TestConstruction:
    def test_one_lane_per_column(self, datapath, design):
        assert len(datapath.lanes) == design.k

    def test_lanes_at_distinct_locations(self, datapath):
        anchors = {pd.placement.anchor for pd in datapath.lanes}
        assert len(anchors) == len(datapath.lanes)

    def test_total_area_sums_lanes(self, datapath):
        assert datapath.total_area_le == sum(
            pd.area.logic_elements for pd in datapath.lanes
        )

    def test_fmax_is_worst_lane(self, datapath):
        tool = [pd.tool_report.fmax_mhz for pd in datapath.lanes]
        assert datapath.tool_fmax_mhz() == min(tool)
        dev = [pd.device_sta().fmax_mhz for pd in datapath.lanes]
        assert datapath.device_fmax_mhz() == min(dev)

    def test_tool_below_device(self, datapath):
        assert datapath.tool_fmax_mhz() < datapath.device_fmax_mhz()


class TestLaneExecution:
    def _mags(self, design, n=40, seed=1):
        x = low_rank_gaussian(6, 3, n, np.random.default_rng(seed), noise=0.02)
        return quantize_data(x, design.w_data).magnitudes

    def test_slow_clock_exact_products(self, datapath, design):
        mags = self._mags(design)
        run = datapath.run_lane(0, mags, 100.0, np.random.default_rng(0))
        assert run.error_rate == 0.0
        expected = (mags.T.reshape(-1)) * np.tile(design.magnitudes[:, 0], mags.shape[1])
        assert np.array_equal(run.captured_products, expected)

    def test_overclocked_lane_errs(self, datapath, design):
        mags = self._mags(design, n=150)
        run = datapath.run_lane(0, mags, 520.0, np.random.default_rng(0))
        assert run.error_rate > 0.0

    def test_wrong_p_rejected(self, datapath):
        with pytest.raises(DesignError):
            datapath.run_lane(0, np.zeros((4, 10), dtype=np.int64), 100.0, np.random.default_rng(0))

    def test_stream_order_sample_major(self, datapath, design):
        """The lane consumes x component-by-component within each sample."""
        mags = self._mags(design, n=3)
        run = datapath.run_lane(1, mags, 50.0, np.random.default_rng(0))
        coeffs = design.magnitudes[:, 1]
        expected = np.concatenate([mags[:, i] * coeffs for i in range(3)])
        assert np.array_equal(run.captured_products, expected)
