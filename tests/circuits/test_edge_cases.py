"""Edge-case tests for the evaluation stack."""

import numpy as np
import pytest

from repro.circuits import Domain, evaluate_design
from repro.core.design import LinearProjectionDesign
from repro.core.klt import klt_reference_design
from repro.datasets import low_rank_gaussian
from repro.models.error_model import ErrorModelSet
from tests.conftest import make_synthetic_error_model


@pytest.fixture(scope="module")
def models():
    return ErrorModelSet(
        {wl: make_synthetic_error_model(wl, freqs=(250.0, 320.0, 400.0)) for wl in range(3, 10)}
    )


def _design(x, wl=5, freq=250.0):
    return klt_reference_design(x, 3, wl, 9, freq, area_le=100.0)


class TestDegenerateData:
    def test_zero_test_data_predicted(self, models):
        x_train = low_rank_gaussian(6, 3, 100, np.random.default_rng(0))
        d = _design(x_train)
        zeros = np.zeros((6, 20))
        ev = evaluate_design(d, zeros, Domain.PREDICTED, error_models=models)
        assert ev.mse == pytest.approx(0.0)

    def test_zero_test_data_simulated(self, models):
        x_train = low_rank_gaussian(6, 3, 100, np.random.default_rng(0))
        d = _design(x_train)
        zeros = np.zeros((6, 20))
        ev = evaluate_design(d, zeros, Domain.SIMULATED, error_models=models)
        assert ev.mse == pytest.approx(0.0)

    def test_zero_test_data_actual(self, models, device):
        x_train = low_rank_gaussian(6, 3, 100, np.random.default_rng(0))
        d = _design(x_train, wl=4)
        zeros = np.zeros((6, 20))
        ev = evaluate_design(
            d, zeros, Domain.ACTUAL, error_models=models, device=device
        )
        assert ev.mse == pytest.approx(0.0)

    def test_single_test_sample(self, models):
        x_train = low_rank_gaussian(6, 3, 100, np.random.default_rng(0))
        d = _design(x_train)
        one = x_train[:, :1]
        ev = evaluate_design(d, one, Domain.PREDICTED, error_models=models)
        assert np.isfinite(ev.mse)


class TestDegenerateDesigns:
    def test_all_zero_coefficients_evaluate(self, models):
        x = low_rank_gaussian(6, 3, 50, np.random.default_rng(0))
        d = LinearProjectionDesign(
            values=np.zeros((6, 2)),
            magnitudes=np.zeros((6, 2), dtype=np.int64),
            signs=np.ones((6, 2), dtype=np.int64),
            wordlengths=(4, 4),
            w_data=9,
            freq_mhz=250.0,
            area_le=10.0,
        )
        ev = evaluate_design(d, x, Domain.PREDICTED, error_models=models)
        # Explains nothing: MSE equals the data energy.
        assert ev.mse == pytest.approx(float((x**2).mean()), rel=1e-6)

    def test_k_equals_one(self, models):
        x = low_rank_gaussian(6, 1, 80, np.random.default_rng(1), noise=0.01)
        d = klt_reference_design(x, 1, 6, 9, 250.0, area_le=50.0)
        ev = evaluate_design(d, x, Domain.SIMULATED, error_models=models)
        assert ev.mse < 0.05 * float((x**2).mean())

    def test_mixed_wordlength_columns(self, models, device):
        x = low_rank_gaussian(6, 3, 60, np.random.default_rng(2))
        base = klt_reference_design(x, 3, 6, 9, 150.0)
        from repro.core.quantize import quantize_coefficients

        cols = []
        for j, wl in enumerate((3, 6, 9)):
            q = quantize_coefficients(base.values[:, j], wl)
            cols.append((q, wl))
        d = LinearProjectionDesign(
            values=np.stack([c[0].values for c in cols], axis=1),
            magnitudes=np.stack([c[0].magnitudes for c in cols], axis=1),
            signs=np.stack([c[0].signs for c in cols], axis=1),
            wordlengths=(3, 6, 9),
            w_data=9,
            freq_mhz=150.0,
            area_le=100.0,
        )
        ev = evaluate_design(
            d, x, Domain.ACTUAL, error_models=models, device=device
        )
        assert np.isfinite(ev.mse)
        assert len(ev.extra["lane_error_rates"]) == 3


class TestFrameworkBetas:
    def test_optimize_all_betas(self, device):
        from repro.characterization import CharacterizationConfig
        from repro.config import TableISettings
        from repro.framework import OptimizationFramework

        settings = TableISettings(
            n_characterization=80,
            n_train=40,
            n_test=40,
            burn_in=10,
            n_samples=40,
            q=2,
            betas=(2.0, 8.0),
            min_coeff_wordlength=3,
            max_coeff_wordlength=4,
        )
        char = CharacterizationConfig(
            freqs_mhz=(300.0, 420.0), n_samples=80, n_locations=1
        )
        fw = OptimizationFramework(device, settings, char_config=char, seed=3)
        x = low_rank_gaussian(6, 3, 40, np.random.default_rng(0))
        results = fw.optimize_all_betas(x)
        assert [r.beta for r in results] == [2.0, 8.0]
        for r in results:
            assert len(r.designs) == 2
