"""Tests for repro.circuits.executor — the three evaluation domains."""

import numpy as np
import pytest

from repro.circuits import Domain, evaluate_design, evaluate_domains
from repro.core.klt import klt_reference_design
from repro.datasets import low_rank_gaussian
from repro.errors import DesignError
from repro.models.error_model import ErrorModelSet
from tests.conftest import make_synthetic_error_model


@pytest.fixture(scope="module")
def x_data():
    return low_rank_gaussian(6, 3, 200, np.random.default_rng(0), noise=0.02)


@pytest.fixture(scope="module")
def models():
    # Synthetic models: error-free below 300 MHz, popcount-scaled above.
    return ErrorModelSet(
        {wl: make_synthetic_error_model(wl, freqs=(250.0, 320.0, 400.0)) for wl in range(3, 10)}
    )


def _design(x, wl=5, freq=250.0):
    return klt_reference_design(x, 3, wl, 9, freq, area_le=300.0)


class TestPredicted:
    def test_error_free_equals_recon_mse(self, x_data, models):
        from repro.core.objective import reconstruction_mse

        d = _design(x_data, freq=250.0)
        ev = evaluate_design(d, x_data, Domain.PREDICTED, error_models=models)
        assert ev.mse == pytest.approx(reconstruction_mse(d.values, x_data))

    def test_overclocked_adds_term(self, x_data, models):
        lo_design, hi_design = _design(x_data, freq=250.0), _design(x_data, freq=400.0)
        lo = evaluate_design(lo_design, x_data, Domain.PREDICTED, error_models=models)
        hi = evaluate_design(hi_design, x_data, Domain.PREDICTED, error_models=models)
        assert hi.mse > lo.mse

    def test_requires_models(self, x_data):
        with pytest.raises(DesignError):
            evaluate_design(_design(x_data), x_data, Domain.PREDICTED)


class TestSimulated:
    def test_error_free_close_to_float(self, x_data, models):
        from repro.core.objective import reconstruction_mse

        d = _design(x_data, freq=250.0)
        ev = evaluate_design(d, x_data, Domain.SIMULATED, error_models=models)
        # Only data quantisation separates the two.
        assert ev.mse == pytest.approx(
            reconstruction_mse(d.values, x_data), rel=0.3, abs=1e-5
        )

    def test_injection_tracks_prediction(self, x_data, models):
        d = _design(x_data, wl=7, freq=400.0)
        pred = evaluate_design(d, x_data, Domain.PREDICTED, error_models=models)
        sim = evaluate_design(d, x_data, Domain.SIMULATED, error_models=models, seed=1)
        assert sim.mse == pytest.approx(pred.mse, rel=0.5)

    def test_deterministic_per_seed(self, x_data, models):
        d = _design(x_data, freq=400.0)
        a = evaluate_design(d, x_data, Domain.SIMULATED, error_models=models, seed=4)
        b = evaluate_design(d, x_data, Domain.SIMULATED, error_models=models, seed=4)
        assert a.mse == b.mse


class TestActual:
    def test_error_free_on_device(self, x_data, device, models):
        d = _design(x_data, wl=4, freq=150.0)
        ev = evaluate_design(
            d, x_data, Domain.ACTUAL, error_models=models, device=device
        )
        assert all(r == 0 for r in ev.extra["lane_error_rates"])
        from repro.core.objective import reconstruction_mse

        assert ev.mse == pytest.approx(
            reconstruction_mse(d.values, x_data), rel=0.3, abs=1e-5
        )

    def test_reports_synthesised_area(self, x_data, device, models):
        d = _design(x_data, wl=4, freq=150.0)
        ev = evaluate_design(
            d, x_data, Domain.ACTUAL, error_models=models, device=device
        )
        assert ev.area_le > 0
        assert ev.area_le != 300.0  # actual, not the model estimate

    def test_overclocking_degrades_mse(self, x_data, device, models):
        slow = evaluate_design(
            _design(x_data, wl=8, freq=150.0),
            x_data,
            Domain.ACTUAL,
            error_models=models,
            device=device,
        )
        fast = evaluate_design(
            _design(x_data, wl=8, freq=500.0),
            x_data,
            Domain.ACTUAL,
            error_models=models,
            device=device,
        )
        assert any(r > 0 for r in fast.extra["lane_error_rates"])
        assert fast.mse > slow.mse

    def test_requires_device(self, x_data, models):
        with pytest.raises(DesignError):
            evaluate_design(_design(x_data), x_data, Domain.ACTUAL, error_models=models)

    def test_wrong_data_shape_rejected(self, x_data, device, models):
        d = _design(x_data)
        with pytest.raises(DesignError):
            evaluate_design(
                d, np.zeros((4, 10)), Domain.ACTUAL, error_models=models, device=device
            )


class TestAllDomains:
    def test_consistent_area_across_domains(self, x_data, device, models):
        d = _design(x_data, wl=4, freq=150.0)
        evs = evaluate_domains(d, x_data, models, device)
        areas = {ev.area_le for ev in evs.values()}
        assert len(areas) == 1  # paper: all rows use the actual area

    def test_three_domains_present(self, x_data, device, models):
        d = _design(x_data, wl=4, freq=150.0)
        evs = evaluate_domains(d, x_data, models, device)
        assert set(evs) == {Domain.PREDICTED, Domain.SIMULATED, Domain.ACTUAL}
