"""Tests for repro.fabric.routing."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fabric.routing import RoutingModel


class TestNominal:
    def test_zero_distance_is_base(self):
        m = RoutingModel()
        assert m.nominal_delay(0.0) == pytest.approx(m.timing.routing_base_delay_ns)

    def test_monotone_in_distance(self):
        m = RoutingModel()
        d = m.nominal_delay(np.array([0.0, 1.0, 5.0, 20.0]))
        assert np.all(np.diff(d) > 0)

    def test_fanout_penalty(self):
        m = RoutingModel()
        assert m.nominal_delay(3.0, fanout=4) > m.nominal_delay(3.0, fanout=1)

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigError):
            RoutingModel().nominal_delay(-1.0)

    def test_zero_fanout_rejected(self):
        with pytest.raises(ConfigError):
            RoutingModel().nominal_delay(1.0, fanout=0)


class TestRouted:
    def test_deterministic_per_rng_state(self):
        m = RoutingModel()
        d1 = m.routed_delay(np.ones(10), 1, np.random.default_rng(5))
        d2 = m.routed_delay(np.ones(10), 1, np.random.default_rng(5))
        assert np.array_equal(d1, d2)

    def test_noise_varies_across_nets(self):
        m = RoutingModel()
        d = m.routed_delay(np.ones(50), 1, np.random.default_rng(5))
        assert d.std() > 0

    def test_noise_free_model(self):
        m = RoutingModel(noise_sigma=0.0)
        d = m.routed_delay(np.ones(10), 1, np.random.default_rng(5))
        assert np.allclose(d, m.nominal_delay(np.ones(10)))

    def test_routed_at_least_base(self):
        m = RoutingModel()
        d = m.routed_delay(np.linspace(0, 10, 30), 1, np.random.default_rng(2))
        assert np.all(d >= m.timing.routing_base_delay_ns - 1e-12)


class TestWorstCase:
    def test_worst_case_dominates_nominal(self):
        m = RoutingModel()
        dist = np.linspace(0, 20, 10)
        assert np.all(m.worst_case_delay(dist) >= m.nominal_delay(dist))

    def test_worst_case_covers_most_routed(self):
        m = RoutingModel()
        dist = np.full(2000, 5.0)
        routed = m.routed_delay(dist, 1, np.random.default_rng(0))
        wc = m.worst_case_delay(5.0)
        assert (routed <= wc).mean() > 0.95

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            RoutingModel(noise_sigma=-0.1)
