"""Tests for repro.fabric.conditions."""

import pytest

from repro.errors import ConfigError
from repro.fabric.conditions import OperatingConditions


class TestValidation:
    def test_paper_conditions(self):
        c = OperatingConditions.paper_characterization()
        assert c.temperature_c == 14.0
        assert c.aging_years == 0.0

    def test_extreme_temperature_rejected(self):
        with pytest.raises(ConfigError):
            OperatingConditions(temperature_c=200.0)

    def test_vdd_below_threshold_rejected(self):
        with pytest.raises(ConfigError):
            OperatingConditions(vdd=0.3)

    def test_negative_aging_rejected(self):
        with pytest.raises(ConfigError):
            OperatingConditions(aging_years=-1.0)


class TestScaling:
    def test_nominal_is_unity(self):
        c = OperatingConditions.nominal()
        assert c.delay_scale() == pytest.approx(1.0)

    def test_cooling_speeds_up(self):
        cold = OperatingConditions(temperature_c=14.0)
        assert cold.temperature_scale() < 1.0

    def test_heating_slows_down(self):
        hot = OperatingConditions(temperature_c=85.0)
        assert hot.temperature_scale() > 1.0

    def test_undervolting_slows_down(self):
        low = OperatingConditions(vdd=1.0)
        assert low.voltage_scale() > 1.0

    def test_overvolting_speeds_up(self):
        high = OperatingConditions(vdd=1.35)
        assert high.voltage_scale() < 1.0

    def test_aging_monotone_and_saturating(self):
        scales = [OperatingConditions(aging_years=y).aging_scale() for y in (0, 2, 5, 20, 100)]
        assert scales == sorted(scales)
        assert scales[0] == 1.0
        assert scales[-1] < 1.07  # saturates

    def test_total_is_product(self):
        c = OperatingConditions(temperature_c=50.0, vdd=1.1, aging_years=3.0)
        expected = c.temperature_scale() * c.voltage_scale() * c.aging_scale()
        assert c.delay_scale() == pytest.approx(expected)
