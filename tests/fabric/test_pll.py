"""Tests for repro.fabric.pll."""

import pytest

from repro.errors import ConfigError
from repro.fabric.pll import PLL, PLLConfig


class TestSynthesize:
    @pytest.mark.parametrize("target", [50.0, 100.0, 310.0, 320.0, 340.0, 450.0])
    def test_close_to_request(self, target):
        clock = PLL().synthesize(target)
        assert abs(clock.achieved_mhz - target) / target < 0.01

    def test_vco_constraint_respected(self):
        pll = PLL()
        clock = pll.synthesize(310.0)
        vco = pll.config.reference_mhz * clock.m / clock.n
        assert pll.config.vco_min_mhz <= vco <= pll.config.vco_max_mhz

    def test_period_consistent(self):
        clock = PLL().synthesize(200.0)
        assert clock.period_ns == pytest.approx(1000.0 / clock.achieved_mhz)

    def test_error_ppm(self):
        clock = PLL().synthesize(310.0)
        assert clock.error_ppm < 10000  # < 1%

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            PLL().synthesize(0.0)

    def test_deterministic(self):
        a = PLL().synthesize(333.0)
        b = PLL().synthesize(333.0)
        assert (a.m, a.n, a.c) == (b.m, b.n, b.c)


class TestFrequencyGrid:
    def test_grid_covers_span(self):
        clocks = PLL().frequency_grid(200.0, 300.0, 25.0)
        assert len(clocks) == 5
        assert clocks[0].requested_mhz == 200.0
        assert clocks[-1].requested_mhz == 300.0

    def test_invalid_sweep_rejected(self):
        with pytest.raises(ConfigError):
            PLL().frequency_grid(300.0, 200.0, 10.0)
        with pytest.raises(ConfigError):
            PLL().frequency_grid(200.0, 300.0, 0.0)


class TestConfigValidation:
    def test_bad_reference(self):
        with pytest.raises(ConfigError):
            PLLConfig(reference_mhz=0.0)

    def test_bad_divider_range(self):
        with pytest.raises(ConfigError):
            PLLConfig(m_range=(4, 2))

    def test_bad_vco(self):
        with pytest.raises(ConfigError):
            PLLConfig(vco_min_mhz=1000.0, vco_max_mhz=500.0)
