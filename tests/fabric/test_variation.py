"""Tests for repro.fabric.variation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fabric.variation import VariationConfig, generate_variation_field


def _field(rows=48, cols=48, seed=0, **kw):
    return generate_variation_field(
        rows, cols, VariationConfig(**kw), np.random.default_rng(seed)
    )


class TestGeneration:
    def test_shape(self):
        f = _field(32, 40)
        assert f.shape == (32, 40)

    def test_centered_near_one(self):
        f = _field()
        assert abs(f.factors.mean() - 1.0) < 0.02

    def test_deterministic_per_seed(self):
        assert np.array_equal(_field(seed=3).factors, _field(seed=3).factors)

    def test_different_seeds_differ(self):
        assert not np.array_equal(_field(seed=3).factors, _field(seed=4).factors)

    def test_floor_clip(self):
        f = _field(white_sigma=0.4, systematic_amplitude=0.5, correlated_sigma=0.4)
        assert f.factors.min() >= 0.5

    def test_zero_config_gives_flat_field(self):
        f = _field(systematic_amplitude=0.0, correlated_sigma=0.0, white_sigma=0.0)
        assert np.allclose(f.factors, 1.0)

    def test_systematic_creates_spatial_trend(self):
        f = _field(systematic_amplitude=0.1, correlated_sigma=0.0, white_sigma=0.0)
        # A smooth polynomial surface: neighbouring LEs nearly equal.
        diffs = np.abs(np.diff(f.factors, axis=0))
        assert diffs.max() < 0.02

    def test_white_noise_is_rough(self):
        f = _field(systematic_amplitude=0.0, correlated_sigma=0.0, white_sigma=0.05)
        diffs = np.abs(np.diff(f.factors, axis=0))
        assert diffs.mean() > 0.02

    def test_invalid_grid_rejected(self):
        with pytest.raises(ConfigError):
            generate_variation_field(0, 5, VariationConfig(), np.random.default_rng(0))


class TestConfigValidation:
    def test_negative_amplitude_rejected(self):
        with pytest.raises(ConfigError):
            VariationConfig(systematic_amplitude=-0.1)

    def test_zero_correlation_length_rejected(self):
        with pytest.raises(ConfigError):
            VariationConfig(correlation_length=0.0)

    def test_zero_order_rejected(self):
        with pytest.raises(ConfigError):
            VariationConfig(polynomial_order=0)


class TestFieldQueries:
    def test_factor_at_matches_array(self):
        f = _field()
        assert f.factor_at(5, 7) == f.factors[7, 5]

    def test_window_extracts_region(self):
        f = _field()
        w = f.window(4, 6, 10, 8)
        assert w.shape == (8, 10)
        assert np.array_equal(w, f.factors[6:14, 4:14])

    def test_window_out_of_bounds_rejected(self):
        f = _field(16, 16)
        with pytest.raises(ConfigError):
            f.window(10, 10, 10, 10)

    def test_summary_keys(self):
        s = _field().summary()
        assert {"mean", "std", "min", "max", "corner_to_corner"} <= set(s)
        assert s["min"] <= s["mean"] <= s["max"]
