"""Tests for repro.fabric.device."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fabric import (
    CYCLONE_III_3C16,
    DeviceFamily,
    OperatingConditions,
    make_device,
)
from tests.conftest import SMALL_FAMILY


class TestFamily:
    def test_cyclone_iii_le_count(self):
        # Models the EP3C16's ~15k logic elements.
        assert 15000 <= CYCLONE_III_3C16.le_count <= 16000

    def test_worst_case_slower_than_nominal(self):
        f = CYCLONE_III_3C16
        assert f.worst_case_lut_delay_ns() > f.timing.lut_delay_ns

    def test_invalid_grid_rejected(self):
        with pytest.raises(ConfigError):
            DeviceFamily(name="bad", rows=0, cols=10)


class TestMakeDevice:
    def test_serial_is_identity(self):
        a = make_device(1, family=SMALL_FAMILY)
        b = make_device(1, family=SMALL_FAMILY)
        assert np.array_equal(a.variation.factors, b.variation.factors)

    def test_different_serials_differ(self, device, other_device):
        assert not np.array_equal(
            device.variation.factors, other_device.variation.factors
        )

    def test_default_conditions_are_paper(self, device):
        assert device.conditions.temperature_c == 14.0


class TestDelayQueries:
    def test_lut_delay_positive(self, device):
        assert device.lut_delay_at(3, 4) > 0

    def test_vectorised_query(self, device):
        xs = np.array([0, 1, 2])
        ys = np.array([5, 5, 5])
        d = device.lut_delay_at(xs, ys)
        assert d.shape == (3,)

    def test_out_of_grid_rejected(self, device):
        with pytest.raises(ConfigError):
            device.lut_delay_at(device.cols, 0)

    def test_conditions_scale_delays(self, device):
        hot = device.with_conditions(OperatingConditions(temperature_c=85.0))
        assert hot.lut_delay_at(2, 2) > device.lut_delay_at(2, 2)

    def test_locations_differ(self, device):
        # The premise of location-specific characterisation.
        all_delays = device.lut_delay_at(
            np.arange(device.cols), np.zeros(device.cols, dtype=int)
        )
        assert all_delays.std() > 0


class TestRoutingRng:
    def test_per_placement_deterministic(self, device):
        a = device.routing_rng(3).normal(size=4)
        b = device.routing_rng(3).normal(size=4)
        assert np.array_equal(a, b)

    def test_per_placement_distinct(self, device):
        a = device.routing_rng(3).normal(size=4)
        b = device.routing_rng(4).normal(size=4)
        assert not np.array_equal(a, b)


class TestReport:
    def test_report_fields(self, device):
        r = device.report()
        assert r["serial"] == device.serial
        assert r["le_count"] == device.family.le_count
        assert "variation_std" in r
