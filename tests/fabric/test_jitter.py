"""Tests for repro.fabric.jitter."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fabric.jitter import JitterModel


class TestSampling:
    def test_ideal_is_zero(self):
        j = JitterModel.ideal()
        assert np.all(j.sample(100, np.random.default_rng(0)) == 0)

    def test_bounded(self):
        j = JitterModel(sigma_ns=0.05, bound_ns=0.08)
        s = j.sample(10000, np.random.default_rng(0))
        assert np.all(np.abs(s) <= 0.08)

    def test_zero_mean(self):
        j = JitterModel(sigma_ns=0.02, bound_ns=0.08)
        s = j.sample(20000, np.random.default_rng(0))
        assert abs(s.mean()) < 0.001

    def test_deterministic(self):
        j = JitterModel()
        a = j.sample(50, np.random.default_rng(3))
        b = j.sample(50, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ConfigError):
            JitterModel().sample(-1, np.random.default_rng(0))


class TestEffectivePeriods:
    def test_centered_on_period(self):
        j = JitterModel(sigma_ns=0.01, bound_ns=0.05)
        eff = j.effective_periods(3.0, 10000, np.random.default_rng(1))
        assert abs(eff.mean() - 3.0) < 0.001

    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigError):
            JitterModel().effective_periods(0.0, 10, np.random.default_rng(0))


class TestValidation:
    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError):
            JitterModel(sigma_ns=-0.01)

    def test_bound_below_sigma_rejected(self):
        with pytest.raises(ConfigError):
            JitterModel(sigma_ns=0.05, bound_ns=0.01)
