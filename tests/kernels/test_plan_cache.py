"""Execution-plan cache: memoisation, counters, fingerprints, tiling."""

import numpy as np
import pytest

from repro.kernels import (
    clear_plan_cache,
    evaluate_tile,
    netlist_fingerprint,
    plan_cache_size,
    plan_for,
)
from repro.netlist.core import EvalScratch
from repro.netlist.generators import generate
from repro.obs import runtime as obs


@pytest.fixture()
def mult5():
    return generate("unsigned_multiplier", 5, 4).compile()


class TestPlanCache:
    def test_hit_miss_counters(self, mult5):
        clear_plan_cache()
        with obs.observability(trace=False, metrics=True) as observer:
            p1 = plan_for(mult5)
            p2 = plan_for(mult5)
            counters = observer.metrics.snapshot().counters
        assert p1 is p2
        assert counters["kernel.plan.cache_misses"] == 1
        assert counters["kernel.plan.cache_hits"] == 1
        assert plan_cache_size() >= 1

    def test_structural_identity_shares_plans(self):
        clear_plan_cache()
        a = generate("unsigned_multiplier", 4, 4).compile()
        b = generate("unsigned_multiplier", 4, 4).compile()
        assert a is not b
        assert netlist_fingerprint(a) == netlist_fingerprint(b)
        assert plan_for(a) is plan_for(b)
        assert plan_cache_size() == 1

    def test_fingerprint_distinguishes_geometry(self):
        a = generate("unsigned_multiplier", 4, 4).compile()
        c = generate("unsigned_multiplier", 4, 5).compile()
        assert netlist_fingerprint(a) != netlist_fingerprint(c)

    def test_fingerprint_is_stable_string(self, mult5):
        f1 = netlist_fingerprint(mult5)
        f2 = netlist_fingerprint(mult5)
        assert f1 == f2
        assert isinstance(f1, str) and len(f1) == 64  # sha256 hex

    def test_plan_shape(self, mult5):
        plan = plan_for(mult5)
        assert plan.n_nodes == mult5.n_nodes
        assert plan.n_groups >= 1
        assert len(plan.levels) == len(mult5.level_groups)
        assert len(plan.timing_levels) == len(mult5.level_groups)


class TestEvaluateTile:
    def test_matches_evaluate_ints_loop(self, mult5):
        ms = np.arange(16)
        samples = np.arange(32)
        tile = evaluate_tile(mult5, fixed={"b": ms}, streamed={"a": samples})
        assert tile["p"].shape == (16, 32)
        for mi, m in enumerate(ms):
            ref = mult5.evaluate_ints(
                a=samples, b=np.full(samples.shape, m)
            )["p"]
            np.testing.assert_array_equal(tile["p"][mi], ref)

    def test_scratch_reuse(self, mult5):
        scratch = EvalScratch()
        ms = np.arange(8)
        samples = np.arange(32)
        t1 = evaluate_tile(
            mult5, fixed={"b": ms}, streamed={"a": samples}, scratch=scratch
        )
        t2 = evaluate_tile(
            mult5, fixed={"b": ms}, streamed={"a": samples}, scratch=scratch
        )
        np.testing.assert_array_equal(t1["p"], t2["p"])
        assert len(scratch) > 0

    def test_validation(self, mult5):
        from repro.errors import NetlistError

        with pytest.raises(NetlistError, match="unknown input bus"):
            evaluate_tile(mult5, fixed={"z": [1]}, streamed={"a": [1]})
        with pytest.raises(NetlistError, match="missing input buses"):
            evaluate_tile(mult5, fixed={"b": [1]}, streamed={})
        with pytest.raises(NetlistError, match="both fixed and streamed"):
            evaluate_tile(
                mult5, fixed={"a": [1], "b": [1]}, streamed={"a": [1]}
            )
