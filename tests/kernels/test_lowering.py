"""Truth-table lowering: every LUT reduces to a verified boolean form."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.lower import (
    OP_AND,
    OP_CONST,
    OP_LITERAL,
    OP_OR,
    OP_SOP,
    OP_XOR,
    Literal,
    eval_lowered,
    lower_tt,
)

# Named 2-input truth tables (LSB-first row order: row = a | b<<1).
TT_AND2 = 0b1000
TT_OR2 = 0b1110
TT_XOR2 = 0b0110
TT_XNOR2 = 0b1001
TT_NAND2 = 0b0111


def _truth_rows(arity: int, tt: int) -> list[int]:
    return [(tt >> r) & 1 for r in range(1 << arity)]


def _check_against_rows(arity: int, tt: int) -> None:
    """eval_lowered over integer planes must reproduce every tt row."""
    lowered = lower_tt(arity, tt)
    # Bit r of plane k is input k's value on truth-table row r.
    planes = tuple(
        sum(1 << r for r in range(1 << arity) if (r >> k) & 1)
        for k in range(arity)
    )
    mask = (1 << (1 << arity)) - 1
    assert eval_lowered(lowered, planes, mask) == (tt & mask)


class TestNamedForms:
    def test_constants(self):
        assert lower_tt(2, 0).kind == OP_CONST
        assert lower_tt(2, 0).value == 0
        full = lower_tt(3, 0xFF)
        assert full.kind == OP_CONST and full.value == 1

    def test_literal_and_negation(self):
        buf = lower_tt(2, 0b1010)  # passes input 0 through
        assert buf.kind == OP_LITERAL and buf.literal == Literal(0, False)
        inv = lower_tt(2, 0b0101)  # NOT input 0
        assert inv.kind == OP_LITERAL and inv.literal == Literal(0, True)

    def test_parity_forms(self):
        assert lower_tt(2, TT_XOR2).kind == OP_XOR
        xnor = lower_tt(2, TT_XNOR2)
        assert xnor.kind == OP_XOR and xnor.invert
        # 3-input parity
        tt3 = sum(1 << r for r in range(8) if bin(r).count("1") % 2 == 1)
        assert lower_tt(3, tt3).kind == OP_XOR

    def test_and_or_forms(self):
        assert lower_tt(2, TT_AND2).kind == OP_AND
        assert lower_tt(2, TT_OR2).kind == OP_OR
        # NAND is an OR of negated literals (De Morgan via maxterm rule).
        nand = lower_tt(2, TT_NAND2)
        assert nand.kind in (OP_OR, OP_SOP)

    def test_support_reduction(self):
        # tt over 3 inputs that only depends on input 1.
        tt = sum(1 << r for r in range(8) if (r >> 1) & 1)
        lowered = lower_tt(3, tt)
        assert lowered.kind == OP_LITERAL and lowered.literal == Literal(1, False)


class TestExhaustiveSmallArities:
    @pytest.mark.parametrize("arity", [1, 2, 3])
    def test_all_truth_tables_verify(self, arity):
        for tt in range(1 << (1 << arity)):
            _check_against_rows(arity, tt)

    def test_ops_counted(self):
        assert lower_tt(2, TT_AND2).n_ops >= 1
        assert lower_tt(2, 0).n_ops == 1  # one constant fill


class TestArity4:
    @given(st.integers(0, 65535))
    @settings(max_examples=200, deadline=None)
    def test_random_tt4_verifies(self, tt):
        _check_against_rows(4, tt)

    def test_majority_and_mux(self):
        maj = sum(1 << r for r in range(8) if bin(r).count("1") >= 2)
        _check_against_rows(3, maj)
        # MUX(d0, d1, sel): row = d0 | d1<<1 | sel<<2
        mux = sum(
            1 << r
            for r in range(8)
            if ((r >> 1) & 1 if (r >> 2) & 1 else r & 1)
        )
        _check_against_rows(3, mux)


class TestEvalLoweredPlanes:
    def test_numpy_uint64_planes(self):
        """eval_lowered also works on packed numpy word planes."""
        lowered = lower_tt(2, TT_XOR2)
        a = np.uint64(0b1100)
        b = np.uint64(0b1010)
        mask = np.uint64(0xF)
        assert eval_lowered(lowered, [a, b], mask) == np.uint64(0b0110)
