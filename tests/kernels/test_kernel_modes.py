"""Kernel-mode selection (REPRO_KERNEL) and end-to-end byte-equality.

The mode is a pure implementation switch: every consumer must produce
byte-identical artefacts under ``interp`` and ``packed``.  The
characterisation regression here is the strongest end-to-end form — a
full sweep (placement, timing, jittered capture, statistics) compared
grid-for-grid across kernels, inline and through the process pool.
"""

import numpy as np
import pytest

from repro.characterization import CharacterizationConfig, characterize_multiplier
from repro.config import (
    KERNEL_INTERP,
    KERNEL_PACKED,
    REPRO_KERNEL_ENV,
    _kernel_mode_from_env,
    get_kernel_mode,
    kernel_mode,
    set_kernel_mode,
)
from repro.errors import ConfigError


class TestModeConfig:
    def test_default_is_packed(self):
        assert get_kernel_mode() in (KERNEL_PACKED, KERNEL_INTERP)

    def test_set_and_restore(self):
        prev = set_kernel_mode(KERNEL_INTERP)
        try:
            assert get_kernel_mode() == KERNEL_INTERP
        finally:
            set_kernel_mode(prev)

    def test_context_manager_restores(self):
        before = get_kernel_mode()
        with kernel_mode(KERNEL_INTERP):
            assert get_kernel_mode() == KERNEL_INTERP
        assert get_kernel_mode() == before

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            set_kernel_mode("simd")

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv(REPRO_KERNEL_ENV, KERNEL_INTERP)
        assert _kernel_mode_from_env() == KERNEL_INTERP
        monkeypatch.delenv(REPRO_KERNEL_ENV)
        assert _kernel_mode_from_env() == KERNEL_PACKED
        monkeypatch.setenv(REPRO_KERNEL_ENV, "turbo")
        with pytest.raises(ConfigError, match="turbo"):
            _kernel_mode_from_env()


def _sweep(device, jobs: int):
    cfg = CharacterizationConfig(
        freqs_mhz=(300.0, 360.0, 420.0),
        n_samples=60,
        multiplicands=tuple(range(8)),
        n_locations=2,
    )
    return characterize_multiplier(device, 6, 3, cfg, seed=5, jobs=jobs)


class TestEndToEndByteEquality:
    def test_characterization_grids_equal_inline(self, device):
        with kernel_mode(KERNEL_INTERP):
            ref = _sweep(device, jobs=1)
        with kernel_mode(KERNEL_PACKED):
            got = _sweep(device, jobs=1)
        np.testing.assert_array_equal(
            got.variance.view(np.uint64), ref.variance.view(np.uint64)
        )
        np.testing.assert_array_equal(
            got.mean.view(np.uint64), ref.mean.view(np.uint64)
        )
        np.testing.assert_array_equal(got.freqs_mhz, ref.freqs_mhz)

    @pytest.mark.slow
    def test_characterization_grids_equal_pooled(self, device, monkeypatch):
        # The env var covers spawn-started workers; fork inherits anyway.
        monkeypatch.setenv(REPRO_KERNEL_ENV, KERNEL_INTERP)
        with kernel_mode(KERNEL_INTERP):
            ref = _sweep(device, jobs=2)
        monkeypatch.setenv(REPRO_KERNEL_ENV, KERNEL_PACKED)
        with kernel_mode(KERNEL_PACKED):
            got = _sweep(device, jobs=2)
        np.testing.assert_array_equal(
            got.variance.view(np.uint64), ref.variance.view(np.uint64)
        )
        np.testing.assert_array_equal(
            got.mean.view(np.uint64), ref.mean.view(np.uint64)
        )
