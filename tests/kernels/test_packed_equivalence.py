"""Packed kernel vs interpreted evaluator: proven bit-for-bit identical.

The packed kernel's whole claim is "same bits, faster".  These tests
pin that claim on random netlists (Hypothesis-driven DAGs with every
gate helper the builder offers), on the real arithmetic generators, and
on the transition-timing path (values *and* float32 settle times).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import kernel_mode
from repro.kernels import evaluate_packed, pack_bits, stream_values, unpack_plane
from repro.netlist.core import Netlist
from repro.netlist.generators import generate
from repro.timing.simulator import simulate_transitions

# Compiled-netlist cache: compilation dominates test time otherwise.
_GEN_CACHE: dict = {}


def _generated(name, *args):
    key = (name,) + args
    if key not in _GEN_CACHE:
        _GEN_CACHE[key] = generate(name, *args).compile()
    return _GEN_CACHE[key]


def _random_netlist(seed: int, width: int, n_luts: int) -> Netlist:
    """A random DAG built from the gate helpers (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    nl = Netlist(f"rand-{seed}-{width}-{n_luts}")
    pool = list(nl.add_input_bus("a", width)) + list(
        nl.add_input_bus("b", width)
    )
    pool.append(nl.add_const(0))
    pool.append(nl.add_const(1))
    for _ in range(n_luts):
        op = rng.integers(0, 7)
        picks = [int(pool[i]) for i in rng.integers(0, len(pool), size=3)]
        if op == 0:
            nid = nl.AND(picks[0], picks[1])
        elif op == 1:
            nid = nl.OR(picks[0], picks[1])
        elif op == 2:
            nid = nl.XOR(picks[0], picks[1])
        elif op == 3:
            nid = nl.NOT(picks[0])
        elif op == 4:
            nid = nl.XOR3(picks[0], picks[1], picks[2])
        elif op == 5:
            nid = nl.MAJ3(picks[0], picks[1], picks[2])
        else:
            nid = nl.MUX(picks[0], picks[1], picks[2])
        pool.append(nid)
    out = [int(pool[i]) for i in rng.integers(0, len(pool), size=width)]
    nl.set_output_bus("p", out)
    return nl


def _random_inputs(cn, batch: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    return {
        name: rng.integers(0, 2, size=(batch, ids.shape[0])).astype(np.uint8)
        for name, ids in cn.input_buses.items()
    }


class TestPackUnpackRoundTrip:
    @given(st.integers(1, 200), st.integers(1, 20), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, batch, width, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(batch, width)).astype(np.uint8)
        words = pack_bits(bits)
        assert words.dtype == np.uint64
        back = unpack_plane(words, batch)
        np.testing.assert_array_equal(back, bits.T)

    def test_zero_batch(self):
        words = pack_bits(np.zeros((0, 3), dtype=np.uint8))
        assert unpack_plane(words, 0).shape == (3, 0)


class TestRandomNetlists:
    @given(
        st.integers(0, 2**31),
        st.integers(1, 8),
        st.integers(1, 40),
        st.sampled_from([1, 3, 63, 64, 65, 130]),
    )
    @settings(max_examples=60, deadline=None)
    def test_packed_matches_interp(self, seed, width, n_luts, batch):
        cn = _random_netlist(seed, width, n_luts).compile()
        inputs = _random_inputs(cn, batch, seed ^ 0x5EED)
        want = cn._evaluate_interp(inputs)
        got = evaluate_packed(cn, inputs)
        assert set(got) == set(want)
        for name in want:
            np.testing.assert_array_equal(got[name], want[name])

    @given(st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_stream_plane_matches_interp_values(self, seed):
        cn = _random_netlist(seed, 5, 25).compile()
        inputs = _random_inputs(cn, 50, seed)  # (N, width) streams
        plane = stream_values(cn, inputs)
        # Interp reference: bind + level loop via initial_values/evaluate.
        values = cn.initial_values(50)
        cn.bind_inputs(values, inputs)
        fidx = cn.fanin_idx
        for ids in cn.level_groups:
            idx = values[fidx[ids, 0]].astype(np.intp)
            idx |= values[fidx[ids, 1]].astype(np.intp) << 1
            idx |= values[fidx[ids, 2]].astype(np.intp) << 2
            idx |= values[fidx[ids, 3]].astype(np.intp) << 3
            values[ids] = np.take_along_axis(cn.tt_bits[ids], idx, axis=1)
        np.testing.assert_array_equal(plane, values)


class TestGeneratorNetlists:
    def test_all_generators_bit_identical(self):
        cases = [
            ("unsigned_multiplier", 6, 5),
            ("wallace_multiplier", 5, 5),
            ("baugh_wooley_multiplier", 5, 4),
            ("sign_magnitude_multiplier", 5, 4),
            ("ccm", 77, 6),
            ("mac", 4, 4),
        ]
        for case_i, (name, *args) in enumerate(cases):
            cn = _generated(name, *args)
            for batch in (1, 64, 97):
                inputs = _random_inputs(cn, batch, 1000 + case_i)
                want = cn._evaluate_interp(inputs)
                got = evaluate_packed(cn, inputs)
                for bus in want:
                    np.testing.assert_array_equal(got[bus], want[bus], err_msg=f"{name}/{bus}")


class TestTimingEquivalence:
    def test_simulate_transitions_identical(self, placed_mult8):
        cn = placed_mult8.netlist
        rng = np.random.default_rng(7)
        n = 120
        from repro.netlist.core import bits_from_ints

        inputs = {
            "a": bits_from_ints(rng.integers(0, 256, n), 8),
            "b": bits_from_ints(rng.integers(0, 256, n), 8),
        }
        with kernel_mode("interp"):
            ref = simulate_transitions(
                cn, inputs, placed_mult8.node_delay, placed_mult8.edge_delay
            )
        with kernel_mode("packed"):
            got = simulate_transitions(
                cn, inputs, placed_mult8.node_delay, placed_mult8.edge_delay
            )
        np.testing.assert_array_equal(got.values, ref.values)
        # Bit-identical float32: same ops in the same order, not just close.
        np.testing.assert_array_equal(
            got.settle.view(np.uint32), ref.settle.view(np.uint32)
        )

    def test_synthetic_delays_random_dag(self):
        cn = _random_netlist(99, 6, 30).compile()
        rng = np.random.default_rng(3)
        node_delay = rng.uniform(0.1, 0.9, cn.n_nodes)
        edge_delay = rng.uniform(0.05, 0.4, (cn.n_nodes, 4))
        inputs = {
            name: rng.integers(0, 2, size=(40, ids.shape[0])).astype(np.uint8)
            for name, ids in cn.input_buses.items()
        }
        with kernel_mode("interp"):
            ref = simulate_transitions(cn, inputs, node_delay, edge_delay)
        with kernel_mode("packed"):
            got = simulate_transitions(cn, inputs, node_delay, edge_delay)
        np.testing.assert_array_equal(got.values, ref.values)
        np.testing.assert_array_equal(
            got.settle.view(np.uint32), ref.settle.view(np.uint32)
        )
