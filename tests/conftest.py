"""Shared fixtures.

Heavy artefacts (device, placed multipliers, characterisation results)
are session-scoped: they are deterministic pure functions of their seeds,
so sharing them across tests changes nothing about isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization import CharacterizationConfig, characterize_multiplier
from repro.fabric import DeviceFamily, make_device
from repro.models.error_model import ErrorModel, ErrorModelSet, build_error_model
from repro.netlist import unsigned_array_multiplier
from repro.synthesis import SynthesisFlow

#: A small family keeps placement sweeps cheap while still leaving room
#: for every netlist the tests synthesise.
SMALL_FAMILY = DeviceFamily(name="test-family", rows=64, cols=64)


@pytest.fixture(scope="session")
def device():
    """One fabricated die, shared by the whole session."""
    return make_device(serial=1234, family=SMALL_FAMILY)


@pytest.fixture(scope="session")
def other_device():
    """A different die of the same family (for device-specific tests)."""
    return make_device(serial=5678, family=SMALL_FAMILY)


@pytest.fixture(scope="session")
def flow(device):
    return SynthesisFlow(device)


@pytest.fixture(scope="session")
def placed_mult8(flow):
    """An 8x8 unsigned multiplier placed at the origin."""
    return flow.run(unsigned_array_multiplier(8, 8), anchor=(0, 0), seed=0)


@pytest.fixture(scope="session")
def small_char_config():
    """Factory for a small characterisation sweep configuration.

    The shared shape for engine/faults tests: two frequencies, two
    locations, a handful of multiplicands — small enough that a full
    sweep (even with retries) stays in the tens of milliseconds.
    """

    def make(n_mult: int = 12, chunk: int = 4, n_samples: int = 40):
        return CharacterizationConfig(
            freqs_mhz=(280.0, 320.0),
            n_samples=n_samples,
            multiplicands=tuple(range(n_mult)),
            n_locations=2,
            segment_chunk=chunk,
        )

    return make


@pytest.fixture(scope="session")
def char_result(device):
    """A small but real characterisation sweep of a 9x4 multiplier."""
    cfg = CharacterizationConfig(
        freqs_mhz=(400.0, 450.0, 500.0, 550.0, 600.0),
        n_samples=160,
        multiplicands=None,
        n_locations=2,
    )
    return characterize_multiplier(device, 9, 4, cfg, seed=11)


@pytest.fixture(scope="session")
def error_model(char_result):
    return build_error_model(char_result)


def make_synthetic_error_model(
    w_coeff: int,
    w_data: int = 9,
    freqs=(250.0, 300.0, 350.0),
    serial: int = 0,
    onset_index: int = 1,
) -> ErrorModel:
    """A deterministic synthetic E(m, f): zero below onset, growing above.

    Variance grows with multiplicand popcount and with frequency — the two
    monotonicities the real characterisation exhibits.
    """
    mags = np.arange(1 << w_coeff)
    pop = np.array([bin(m).count("1") for m in mags], dtype=float)
    var = np.zeros((mags.size, len(freqs)))
    for fi in range(onset_index, len(freqs)):
        var[:, fi] = pop * (fi - onset_index + 1) * 100.0
    mean = np.zeros_like(var)
    return ErrorModel(
        w_data=w_data,
        w_coeff=w_coeff,
        device_serial=serial,
        multiplicands=mags,
        freqs_mhz=np.asarray(freqs, dtype=float),
        variance=var,
        mean=mean,
    )


@pytest.fixture(scope="session")
def synthetic_model_set():
    """Synthetic error models for word-lengths 3..9 (fast optimizer tests)."""
    return ErrorModelSet(
        {wl: make_synthetic_error_model(wl) for wl in range(3, 10)}
    )
