"""Wire-level behaviour: ops, backpressure, deterministic ids, progress.

Everything here runs over the real socket through the thin client — the
same path a deployment uses — against throwaway servers with tiny quota
settings, so the 429 semantics and scheduling behaviour are observed
end to end rather than unit-faked.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, JobRejectedError, ServeError
from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    REASON_QUEUE_FULL,
    REASON_TENANT_QUOTA,
    RUNNING,
    ServeSettings,
)

from .conftest import SLOW, make_workspace, wait_for


class TestBasicOps:
    def test_ping_and_unknown_ops(self, serve_factory):
        _, client = serve_factory()
        assert client.ping()["ok"] is True
        response = client.request({"op": "bogus"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]
        response = client.request({"op": "status", "job_id": "nope"})
        assert response["ok"] is False
        assert "unknown job id" in response["error"]

    def test_submit_validation_is_a_serve_error_not_a_rejection(
        self, serve_factory
    ):
        _, client = serve_factory()
        with pytest.raises(ServeError) as err:
            client.submit("tenant-a", "bogus-kind", "/nowhere")
        assert not isinstance(err.value, JobRejectedError)

    def test_missing_workspace_fails_with_exit_2(self, tmp_path, serve_factory):
        _, client = serve_factory()
        job = client.submit("tenant-a", "characterize", tmp_path / "nowhere")
        done = client.wait(job["job_id"], timeout_s=30.0)
        assert done["state"] == FAILED
        assert done["exit_code"] == 2
        assert "initialise" in done["error"]

    def test_progress_streams_stage_events(self, tmp_path, serve_factory):
        _, client = serve_factory()
        ws = make_workspace(tmp_path / "ws")
        job = client.submit("tenant-a", "characterize", ws.root)
        client.wait(job["job_id"], timeout_s=120.0)
        stream = client.progress(job["job_id"])
        events = stream["events"]
        assert events[0]["event"] == "wordlength.start"
        assert events[-1]["event"] == "wordlength.done"
        assert stream["finished"] is True
        # Incremental reads: `since` skips what was already consumed.
        tail = client.progress(job["job_id"], since=len(events))
        assert tail["events"] == []

    def test_status_and_result_lifecycle(self, tmp_path, serve_factory):
        _, client = serve_factory()
        ws = make_workspace(tmp_path / "ws")
        job = client.submit("tenant-a", "characterize", ws.root)
        premature = client.result(job["job_id"])
        if not premature["ok"]:  # still queued/running: result refuses
            assert "not finished" in premature["error"]
        done = client.wait(job["job_id"], timeout_s=120.0)
        assert done["state"] == DONE
        status = client.status(job["job_id"])
        assert status["finished"] is True
        assert status["tenant"] == "tenant-a"
        assert status["n_progress"] >= 2

    def test_wait_timeout_reports_current_state(self, tmp_path, serve_factory):
        _, client = serve_factory()
        ws = make_workspace(tmp_path / "ws", settings=SLOW)
        job = client.submit("tenant-a", "characterize", ws.root)
        with pytest.raises(ServeError, match="timeout"):
            client.wait(job["job_id"], timeout_s=0.05)
        assert client.wait(job["job_id"], timeout_s=300.0)["state"] == DONE


class TestBackpressure:
    def test_quota_then_capacity_rejections(self, tmp_path, serve_factory):
        settings = ServeSettings(
            max_workers=1, queue_limit=1, tenant_queue_limit=1,
            tenant_running_limit=1,
        )
        _, client = serve_factory(settings=settings)
        slow_ws = make_workspace(tmp_path / "slow", settings=SLOW)
        tiny_ws = make_workspace(tmp_path / "tiny")

        running = client.submit("tenant-a", "characterize", slow_ws.root)
        assert wait_for(
            lambda: client.status(running["job_id"])["state"] == RUNNING
        )
        queued = client.submit("tenant-a", "characterize", tiny_ws.root)

        # tenant-a already holds its one queue slot: tenant quota first.
        with pytest.raises(JobRejectedError) as quota:
            client.submit("tenant-a", "characterize", tiny_ws.root)
        assert quota.value.reason == REASON_TENANT_QUOTA
        assert quota.value.http_status == 429
        # Another tenant sees the global limit instead.
        with pytest.raises(JobRejectedError) as full:
            client.submit("tenant-b", "characterize", tiny_ws.root)
        assert full.value.reason == REASON_QUEUE_FULL
        assert full.value.http_status == 429

        # Backpressure is advisory: cancel the queued job and the same
        # submission is admitted again.
        assert client.cancel(queued["job_id"])["state"] == CANCELLED
        retry = client.submit("tenant-b", "characterize", tiny_ws.root)
        client.cancel(running["job_id"])
        assert client.wait(retry["job_id"], timeout_s=300.0)["state"] == DONE

    def test_stats_expose_policy_and_cache(self, serve_factory):
        settings = ServeSettings(
            max_workers=3, queue_limit=9, tenant_queue_limit=4,
            tenant_running_limit=2,
        )
        _, client = serve_factory(settings=settings)
        stats = client.stats()
        assert stats["settings"] == {
            "max_workers": 3, "queue_limit": 9,
            "tenant_queue_limit": 4, "tenant_running_limit": 2,
        }
        assert stats["queue_depth"] == 0
        assert stats["active"] == 0
        assert "sanitizer_violations" in stats["cache"]


class TestDeterministicIds:
    def test_same_submissions_same_ids_across_servers(
        self, tmp_path, serve_factory
    ):
        submissions = [
            ("tenant-a", "characterize", tmp_path / "nowhere1", {}),
            ("tenant-b", "characterize", tmp_path / "nowhere2", {"jobs": 2}),
            ("tenant-a", "fit_area", tmp_path / "nowhere1", {}),
        ]
        ids = []
        for _ in range(2):
            _, client = serve_factory()
            ids.append([
                client.submit(tenant, kind, ws, params=params)["job_id"]
                for tenant, kind, ws, params in submissions
            ])
        assert ids[0] == ids[1]
        assert len(set(ids[0])) == len(submissions)


class TestSettings:
    def test_from_env_and_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "5")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_LIMIT", "11")
        settings = ServeSettings.from_env()
        assert settings.max_workers == 5
        assert settings.queue_limit == 11
        with pytest.raises(ConfigError):
            ServeSettings(max_workers=0)
        with pytest.raises(ConfigError):
            ServeSettings(queue_limit=-1)
