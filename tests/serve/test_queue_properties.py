"""Property tests: admission control is a pure function of history.

The :class:`~repro.serve.queue.AdmissionQueue` has no clocks, no
randomness and no I/O, so replaying a submission sequence must reproduce
every admission, every rejection (and its reason) and the complete
schedule order.  Hypothesis drives arbitrary multi-tenant submission
sequences through a model server loop and pins exactly that.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JobRejectedError, ServeError
from repro.serve import (
    AdmissionQueue,
    QueueEntry,
    REASON_QUEUE_FULL,
    REASON_TENANT_QUOTA,
    JobSpec,
    ServeSettings,
    job_id_for,
)

SMALL = ServeSettings(
    max_workers=2, queue_limit=5, tenant_queue_limit=2, tenant_running_limit=1
)

submissions_strategy = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 3)),
    max_size=40,
)


def simulate(submissions, policy=SMALL):
    """Run submissions through a model server loop; return its decisions.

    Mirrors the real scheduler: admit everything up front (recording
    rejections), then repeatedly fill ``max_workers`` slots via
    ``pop_next`` and complete the oldest running job — fully
    deterministic, with the tenant-running skip logic exercised.
    """
    queue = AdmissionQueue(policy)
    decisions = []
    for seq, (tenant, priority) in enumerate(submissions):
        try:
            position = queue.admit(QueueEntry(seq, tenant, priority))
            decisions.append(("admit", seq, position))
        except JobRejectedError as exc:
            decisions.append(("reject", seq, exc.reason))
    schedule = []
    running: list[QueueEntry] = []
    counts: dict[str, int] = {}
    while True:
        while len(running) < policy.max_workers:
            entry = queue.pop_next(counts)
            if entry is None:
                break
            running.append(entry)
            counts[entry.tenant] = counts.get(entry.tenant, 0) + 1
            schedule.append(entry.seq)
        if not running:
            break  # queue drained (or only quota-starved entries left)
        finished = running.pop(0)
        counts[finished.tenant] -= 1
        if counts[finished.tenant] == 0:
            del counts[finished.tenant]
    return decisions, schedule


class TestQueueDeterminism:
    @given(submissions=submissions_strategy)
    @settings(max_examples=200, deadline=None)
    def test_replay_reproduces_every_decision(self, submissions):
        first = simulate(submissions)
        second = simulate(submissions)
        assert first == second

    @given(submissions=submissions_strategy)
    @settings(max_examples=200, deadline=None)
    def test_rejection_reasons_follow_the_documented_rules(self, submissions):
        queue = AdmissionQueue(SMALL)
        queued_by_tenant: dict[str, int] = {}
        total = 0
        for seq, (tenant, priority) in enumerate(submissions):
            try:
                queue.admit(QueueEntry(seq, tenant, priority))
                queued_by_tenant[tenant] = queued_by_tenant.get(tenant, 0) + 1
                total += 1
            except JobRejectedError as exc:
                if queued_by_tenant.get(tenant, 0) >= SMALL.tenant_queue_limit:
                    assert exc.reason == REASON_TENANT_QUOTA
                else:
                    assert total >= SMALL.queue_limit
                    assert exc.reason == REASON_QUEUE_FULL
                assert exc.http_status == 429
            assert len(queue) == total <= SMALL.queue_limit
            assert queue.depth_for(tenant) <= SMALL.tenant_queue_limit

    @given(submissions=submissions_strategy)
    @settings(max_examples=200, deadline=None)
    def test_schedule_covers_every_admission_exactly_once(self, submissions):
        decisions, schedule = simulate(submissions)
        admitted = [seq for verdict, seq, _ in decisions if verdict == "admit"]
        assert sorted(schedule) == sorted(admitted)

    @given(submissions=st.lists(
        st.tuples(st.sampled_from(["a", "b"]), st.integers(0, 3)), max_size=10
    ))
    @settings(max_examples=200, deadline=None)
    def test_snapshot_is_priority_then_fifo(self, submissions):
        queue = AdmissionQueue(
            ServeSettings(max_workers=1, queue_limit=64,
                          tenant_queue_limit=64, tenant_running_limit=1)
        )
        for seq, (tenant, priority) in enumerate(submissions):
            queue.admit(QueueEntry(seq, tenant, priority))
        keys = [entry.sort_key for entry in queue.snapshot()]
        assert keys == sorted(keys)


class TestDeterministicJobIds:
    @given(
        tenant=st.sampled_from(["a", "tenant-b"]),
        seq=st.integers(0, 10_000),
        priority=st.integers(-2, 9),
    )
    @settings(max_examples=100, deadline=None)
    def test_id_is_a_pure_function_of_spec_and_seq(self, tenant, seq, priority):
        spec = JobSpec(tenant=tenant, kind="characterize", workspace="/ws",
                       priority=priority, params={"jobs": 2})
        clone = JobSpec.from_dict({
            "tenant": tenant, "kind": "characterize", "workspace": "/ws",
            "priority": priority, "params": {"jobs": 2},
        })
        assert job_id_for(spec, seq) == job_id_for(clone, seq)
        assert len(job_id_for(spec, seq)) == 16

    def test_seq_and_params_separate_ids(self):
        spec = JobSpec(tenant="a", kind="characterize", workspace="/ws")
        other = JobSpec(tenant="a", kind="characterize", workspace="/ws",
                        params={"jobs": 4})
        assert job_id_for(spec, 0) != job_id_for(spec, 1)
        assert job_id_for(spec, 0) != job_id_for(other, 0)

    def test_spec_validation(self):
        with pytest.raises(ServeError):
            JobSpec(tenant="", kind="characterize", workspace="/ws")
        with pytest.raises(ServeError):
            JobSpec(tenant="a", kind="bogus", workspace="/ws")
        with pytest.raises(ServeError):
            JobSpec(tenant="a", kind="characterize", workspace="")
        with pytest.raises(ServeError):
            JobSpec(tenant="a", kind="characterize", workspace="/ws",
                    params={"bad": object()}).canonical_json()
