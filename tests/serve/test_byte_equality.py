"""The headline guarantee: served artefacts byte-equal ``repro-flow``'s.

The ``.npz`` archives — the E(m, f) grids every later stage consumes —
must be *byte-for-byte identical* whether a characterisation ran through
the batch CLI or the job server, at any worker count and tenant
concurrency, under either kernel.  The ``.outcome.json`` sidecars carry
attempt provenance including per-attempt wall-clock latency, so they are
compared structurally with the latency fields scrubbed: every
deterministic field (status, shard dispositions, attempt outcomes,
quarantine lists) must match exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli_flow import main as flow_main
from repro.config import get_kernel_mode, set_kernel_mode
from repro.serve import DONE, FAILED, ServeSettings

from .conftest import TINY, make_workspace


def _scrub_latencies(outcome: dict) -> dict:
    for report in outcome.get("reports", []):
        for attempt in report.get("attempts", []):
            attempt.pop("latency_s", None)
    return outcome


def artefacts(root) -> tuple[dict[str, bytes], dict[str, dict]]:
    """(npz bytes, scrubbed outcome sidecars) of one workspace."""
    char = Path(root) / "characterization"
    grids = {p.name: p.read_bytes() for p in sorted(char.glob("wl*.npz"))}
    sidecars = {
        p.name: _scrub_latencies(json.loads(p.read_text()))
        for p in sorted(char.glob("wl*.outcome.json"))
    }
    return grids, sidecars


def assert_same_artefacts(reference, candidate) -> None:
    ref_grids, ref_sidecars = artefacts(reference)
    cand_grids, cand_sidecars = artefacts(candidate)
    assert ref_grids, "reference workspace has no characterisation archives"
    assert cand_grids.keys() == ref_grids.keys()
    for name in ref_grids:
        assert cand_grids[name] == ref_grids[name], f"{name} differs byte-wise"
    assert cand_sidecars == ref_sidecars


@pytest.fixture(params=["packed", "interp"])
def kernel(request, monkeypatch):
    """Run the test under each evaluation kernel, restoring the default."""
    previous = get_kernel_mode()
    monkeypatch.setenv("REPRO_KERNEL", request.param)
    set_kernel_mode(request.param)
    yield request.param
    set_kernel_mode(previous)


class TestServerVsCli:
    def test_characterize_bytes_match_cli(self, tmp_path, serve_factory, kernel):
        """One served job == one ``repro-flow characterize``, byte for byte."""
        cli_ws = make_workspace(tmp_path / "cli_ws")
        assert flow_main(["characterize", str(cli_ws.root)]) == 0

        srv_ws = make_workspace(tmp_path / "srv_ws")
        _, client = serve_factory()
        job = client.submit("tenant-a", "characterize", srv_ws.root)
        done = client.wait(job["job_id"], timeout_s=120.0)
        assert done["state"] == DONE
        assert done["result"]["sweep_health"]["3"]["status"] == "complete"
        assert_same_artefacts(cli_ws.root, srv_ws.root)

    @pytest.mark.slow
    def test_four_tenants_jobs4_match_cli(self, tmp_path, serve_factory):
        """4 concurrent tenants, each sweeping with a 4-worker pool, all
        byte-identical to a serial batch run — the acceptance matrix's
        jobs=4 x concurrency cell."""
        cli_ws = make_workspace(tmp_path / "cli_ws")
        assert flow_main(["characterize", str(cli_ws.root), "--jobs", "1"]) == 0

        settings = ServeSettings(
            max_workers=4, queue_limit=16, tenant_queue_limit=4,
            tenant_running_limit=4,
        )
        _, client = serve_factory(
            settings=settings, cache_dir=tmp_path / "shared_cache"
        )
        jobs = {}
        for tenant in ("alpha", "beta", "gamma", "delta"):
            ws = make_workspace(tmp_path / f"ws_{tenant}")
            job = client.submit(
                tenant, "characterize", ws.root, params={"jobs": 4}
            )
            jobs[tenant] = (job["job_id"], ws)
        for tenant, (job_id, ws) in jobs.items():
            done = client.wait(job_id, timeout_s=300.0)
            assert done["state"] == DONE, f"{tenant}: {done}"
            assert_same_artefacts(cli_ws.root, ws.root)

    def test_init_parity_with_cli(self, tmp_path, serve_factory):
        """A served ``init`` block writes the exact ``workspace.json`` the
        CLI's ``repro-flow init`` writes (byte-equal metadata), even when
        the job's stage itself fails — initialisation is a separate,
        idempotent step."""
        cli_root = tmp_path / "cli_ws"
        assert flow_main(["init", str(cli_root), "--serial", "5",
                          "--scale", "0.012"]) == 0

        srv_root = tmp_path / "srv_ws"
        _, client = serve_factory()
        # ``evaluate`` fails fast (no design set yet: DesignError, the
        # generic ReproError exit) but the init block runs first — a
        # cheap probe of init parity.
        job = client.submit(
            "tenant-a", "evaluate", srv_root,
            params={"init": {"serial": 5, "scale": 0.012}},
        )
        done = client.wait(job["job_id"], timeout_s=60.0)
        assert done["state"] == FAILED
        assert done["exit_code"] == 1
        cli_meta = (cli_root / "workspace.json").read_bytes()
        srv_meta = (srv_root / "workspace.json").read_bytes()
        assert srv_meta == cli_meta


class TestServedExecutorSelection:
    """The serve layer's ``executor`` param is a pure topology knob."""

    @pytest.mark.slow
    def test_file_queue_job_bytes_match_cli(self, tmp_path, serve_factory):
        cli_ws = make_workspace(tmp_path / "cli_ws")
        assert flow_main(["characterize", str(cli_ws.root)]) == 0

        srv_ws = make_workspace(tmp_path / "srv_ws")
        _, client = serve_factory()
        job = client.submit(
            "tenant-a", "characterize", srv_ws.root,
            params={"executor": "file-queue", "jobs": 2},
        )
        done = client.wait(job["job_id"], timeout_s=300.0)
        assert done["state"] == DONE
        assert_same_artefacts(cli_ws.root, srv_ws.root)

    def test_unknown_executor_fails_as_config_error(self, tmp_path, serve_factory):
        ws = make_workspace(tmp_path / "ws")
        _, client = serve_factory()
        job = client.submit(
            "tenant-a", "characterize", ws.root,
            params={"executor": "redis"},
        )
        done = client.wait(job["job_id"], timeout_s=60.0)
        assert done["state"] == FAILED
        assert done["exit_code"] == 2
