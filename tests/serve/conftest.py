"""Fixtures for the serve suite: tiny workspaces and in-process servers.

The server boots on a real Unix socket inside ``tmp_path`` and runs its
asyncio loop on a dedicated thread — the tests talk to it through the
same :class:`~repro.serve.client.ServeClient` a deployment would use, so
the whole wire path (socket, JSON lines, admission, executor dispatch)
is exercised, not mocked.
"""

from __future__ import annotations

import contextlib
import threading
import time

import pytest

from repro.config import TableISettings
from repro.fabric.device import make_device
from repro.serve import JobServer, ServeClient
from repro.workspace import Workspace

#: One-word-length settings: a full characterise job in well under a
#: second, while still running the real sweep engine end to end.
TINY = TableISettings(
    n_characterization=40,
    n_train=20,
    n_test=20,
    burn_in=5,
    n_samples=10,
    q=2,
    min_coeff_wordlength=3,
    max_coeff_wordlength=3,
    input_wordlength=5,
    clock_frequency_mhz=300.0,
)

#: Three word-lengths at a heavier sample count: a job long enough that a
#: cancel issued after the first progress event always lands mid-run.
SLOW = TableISettings(
    n_characterization=600,
    n_train=20,
    n_test=20,
    burn_in=5,
    n_samples=10,
    q=2,
    min_coeff_wordlength=3,
    max_coeff_wordlength=5,
    input_wordlength=5,
    clock_frequency_mhz=300.0,
)

SERIAL = 1234
SEED = 7


def make_workspace(root, settings: TableISettings = TINY, serial: int = SERIAL,
                   seed: int = SEED) -> Workspace:
    """Initialise a workspace with the suite's canonical tiny identity."""
    ws = Workspace(root)
    ws.initialize(make_device(serial), settings, seed=seed)
    return ws


@contextlib.contextmanager
def running_server(socket_path, settings=None, cache_dir=None):
    """Boot a JobServer on its own thread; guarantee clean shutdown."""
    server = JobServer(socket_path, settings=settings, cache_dir=cache_dir)
    ready = threading.Event()
    thread = threading.Thread(target=server.run_blocking, args=(ready,), daemon=True)
    thread.start()
    assert ready.wait(10.0), "job server did not come up"
    client = ServeClient(socket_path)
    try:
        yield server, client
    finally:
        with contextlib.suppress(Exception):
            client.shutdown()
        thread.join(60.0)
        assert not thread.is_alive(), "job server thread did not shut down"


@pytest.fixture
def serve_factory(tmp_path):
    """Factory fixture: boot any number of servers, all torn down at exit."""
    stack = contextlib.ExitStack()
    counter = [0]

    def boot(settings=None, cache_dir=None):
        counter[0] += 1
        socket_path = tmp_path / f"serve{counter[0]}.sock"
        return stack.enter_context(running_server(socket_path, settings, cache_dir))

    try:
        yield boot
    finally:
        stack.close()


def wait_for(predicate, timeout_s: float = 15.0, interval_s: float = 0.02) -> bool:
    """Poll ``predicate`` until it is truthy or the deadline passes."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return bool(predicate())
