"""Fault paths: degradation parity with the batch CLI, and cancellation.

The server must tell the same SLO story as ``repro-flow``: a chaos plan
that degrades a batch run degrades the served job (same artefact bytes),
one that fails a batch run with exit 3 fails the served job with
``exit_code == 3``.  Cancellation is cooperative and lands at artefact
boundaries, so a cancelled job leaves workspace and cache fully valid.
"""

from __future__ import annotations

import json

from repro.characterization.results import CharacterizationResult
from repro.cli_flow import main as flow_main
from repro.serve import CANCELLED, DEGRADED, DONE, FAILED, ServeSettings

from .conftest import SLOW, make_workspace, wait_for

#: A shard that crashes on every attempt: unrecoverable by retries.
PERSISTENT_CRASH = {
    "seed": 5,
    "specs": [{"kind": "crash", "li": 0, "start": 0, "times": -1}],
}


class TestChaosParity:
    def test_degraded_job_matches_degraded_batch_run(
        self, tmp_path, monkeypatch, serve_factory
    ):
        cli_ws = make_workspace(tmp_path / "cli_ws")
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(PERSISTENT_CRASH))
        rc = flow_main([
            "characterize", str(cli_ws.root), "--allow-degraded",
            "--max-retries", "0",
        ])
        monkeypatch.delenv("REPRO_FAULTS")
        assert rc == 0

        srv_ws = make_workspace(tmp_path / "srv_ws")
        _, client = serve_factory()
        job = client.submit(
            "tenant-a", "characterize", srv_ws.root,
            params={
                "faults": PERSISTENT_CRASH,
                "allow_degraded": True,
                "max_retries": 0,
            },
        )
        done = client.wait(job["job_id"], timeout_s=120.0)
        assert done["state"] == DEGRADED
        health = done["result"]["sweep_health"]["3"]
        assert health["status"] == "degraded"
        assert health["quarantined"] == [[0, 0]]
        cli_blob = (cli_ws.root / "characterization" / "wl03.npz").read_bytes()
        srv_blob = (srv_ws.root / "characterization" / "wl03.npz").read_bytes()
        assert srv_blob == cli_blob

    def test_failed_job_carries_batch_exit_3(
        self, tmp_path, monkeypatch, serve_factory
    ):
        cli_ws = make_workspace(tmp_path / "cli_ws")
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(PERSISTENT_CRASH))
        rc = flow_main(["characterize", str(cli_ws.root), "--max-retries", "0"])
        monkeypatch.delenv("REPRO_FAULTS")
        assert rc == 3

        srv_ws = make_workspace(tmp_path / "srv_ws")
        _, client = serve_factory()
        job = client.submit(
            "tenant-a", "characterize", srv_ws.root,
            params={"faults": PERSISTENT_CRASH, "max_retries": 0},
        )
        done = client.wait(job["job_id"], timeout_s=120.0)
        assert done["state"] == FAILED
        assert done["exit_code"] == 3
        assert "quarantined" in done["error"]


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self, tmp_path, serve_factory):
        settings = ServeSettings(
            max_workers=1, queue_limit=8, tenant_queue_limit=8,
            tenant_running_limit=1,
        )
        _, client = serve_factory(settings=settings)
        blocker_ws = make_workspace(tmp_path / "blocker", settings=SLOW)
        queued_ws = make_workspace(tmp_path / "queued")
        blocker = client.submit("tenant-a", "characterize", blocker_ws.root)
        queued = client.submit("tenant-a", "characterize", queued_ws.root)

        cancelled = client.cancel(queued["job_id"])
        assert cancelled["state"] == CANCELLED
        result = client.wait(queued["job_id"], timeout_s=10.0)
        assert result["state"] == CANCELLED
        assert result["result"] is None
        # Nothing ran: the cancelled job wrote no artefacts at all.
        assert not list((queued_ws.root / "characterization").glob("wl*"))
        # The blocker is unaffected and completes normally.
        assert client.wait(blocker["job_id"], timeout_s=300.0)["state"] == DONE

    def test_cancel_mid_run_leaves_workspace_and_cache_valid(
        self, tmp_path, serve_factory
    ):
        """Cancel between word-length sweeps: whatever was archived is
        complete and loadable, no temp files linger, and re-running the
        same job on the same workspace converges to the clean result."""
        _, client = serve_factory(cache_dir=tmp_path / "cache")
        ws = make_workspace(tmp_path / "ws", settings=SLOW)
        job = client.submit("tenant-a", "characterize", ws.root)
        job_id = job["job_id"]
        # Wait for the first sweep to start, then cancel: with two more
        # word-lengths to go, the flag always lands before the job ends.
        assert wait_for(
            lambda: client.progress(job_id)["events"]
            or client.progress(job_id)["finished"]
        )
        client.cancel(job_id)
        outcome = client.wait(job_id, timeout_s=300.0)
        assert outcome["state"] == CANCELLED

        char = ws.root / "characterization"
        # No torn or in-flight files anywhere in the workspace or cache.
        assert not list(ws.root.rglob(".*tmp*"))
        assert not list((tmp_path / "cache").glob("*.tmp*"))
        archived = sorted(char.glob("wl*.npz"))
        assert len(archived) < 3, "cancel landed after the job finished"
        for path in archived:  # everything archived is complete
            result = CharacterizationResult.load(path)
            assert result.variance.size > 0

        # The workspace and cache survived: the same job re-submitted
        # runs to completion and matches an untouched reference run.
        rerun = client.submit("tenant-a", "characterize", ws.root)
        done = client.wait(rerun["job_id"], timeout_s=300.0)
        assert done["state"] == DONE
        ref_ws = make_workspace(tmp_path / "ref", settings=SLOW)
        ref = client.submit("tenant-b", "characterize", ref_ws.root)
        assert client.wait(ref["job_id"], timeout_s=300.0)["state"] == DONE
        for wl in (3, 4, 5):
            name = f"wl{wl:02d}.npz"
            assert (char / name).read_bytes() == (
                ref_ws.root / "characterization" / name
            ).read_bytes()
