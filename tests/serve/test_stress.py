"""Concurrency stress: N tenants x M jobs on one warm shared cache.

Runs with ``REPRO_SANITIZE=1`` so the cache's runtime race detector
journals every lock/install; the acceptance bar is zero violations, all
jobs reaching ``done``, and every tenant's artefacts byte-identical —
concurrency must be invisible in the results.
"""

from __future__ import annotations

import pytest

from repro.serve import DONE, ServeSettings

from .conftest import make_workspace

pytestmark = pytest.mark.slow

N_TENANTS = 4
JOBS_PER_TENANT = 3


def test_stress_shared_cache_sanitized(tmp_path, monkeypatch, serve_factory):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    settings = ServeSettings(
        max_workers=4, queue_limit=64, tenant_queue_limit=8,
        tenant_running_limit=2,
    )
    server, client = serve_factory(
        settings=settings, cache_dir=tmp_path / "shared_cache"
    )
    assert server.cache.sanitizer is not None, "REPRO_SANITIZE did not arm"

    # Every job characterises the same device identity from its own
    # workspace: maximal contention on the same cache keys.
    jobs = []
    for t in range(N_TENANTS):
        for j in range(JOBS_PER_TENANT):
            ws = make_workspace(tmp_path / f"ws_t{t}_j{j}")
            job = client.submit(f"tenant-{t}", "characterize", ws.root)
            jobs.append((job["job_id"], ws))

    results = {}
    for job_id, ws in jobs:
        done = client.wait(job_id, timeout_s=300.0)
        assert done["state"] == DONE, done
        results[job_id] = (done["result"], ws)

    # Deterministic per-job results: every sweep complete, every archive
    # byte-identical to the first tenant's.
    reference = None
    for _, (result, ws) in sorted(results.items()):
        assert all(
            h["status"] == "complete" for h in result["sweep_health"].values()
        )
        blob = (ws.root / "characterization" / "wl03.npz").read_bytes()
        if reference is None:
            reference = blob
        assert blob == reference

    stats = client.stats()
    assert stats["states"][DONE] == N_TENANTS * JOBS_PER_TENANT
    cache = stats["cache"]
    assert cache["sanitizer_violations"] == 0
    assert cache["stores"] >= 1
    # The warm shared cache did its job: far fewer placements than
    # requests (12 identical sweeps re-place nothing after the first).
    assert cache["memory_hits"] + cache["disk_hits"] > cache["misses"]
