"""Smoke tests for the example scripts.

Every example is imported (catching syntax/name rot) and the quickstart —
the example README points at first — is executed end to end at a tiny
scale.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert {
            "quickstart.py",
            "face_recognition.py",
            "image_compression.py",
            "device_characterization.py",
            "design_space_exploration.py",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_imports(self, path):
        spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)  # __main__ guard keeps main() unrun
        assert callable(mod.main)

    def test_quickstart_runs_end_to_end(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py"), "--scale", "0.012"],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "actual MSE" in proc.stdout
        assert "OF" in proc.stdout and "KLT" in proc.stdout


class TestExtendingDocSnippet:
    def test_custom_component_through_the_pipeline(self, device):
        """The docs/extending.md section-1 recipe, executed."""
        import numpy as np

        from repro.netlist import Netlist
        from repro.netlist.adders import add_ripple_carry
        from repro.netlist.core import bits_from_ints
        from repro.synthesis import SynthesisFlow
        from repro.timing import capture_stream, simulate_transitions

        def my_alu(width: int) -> Netlist:
            nl = Netlist(f"alu{width}")
            a = nl.add_input_bus("a", width)
            b = nl.add_input_bus("b", width)
            s, c = add_ripple_carry(nl, a, b)
            nl.set_output_bus("sum", s + [c])
            return nl

        placed = SynthesisFlow(device).run(my_alu(12), anchor=(10, 10), seed=0)
        rng = np.random.default_rng(0)
        stim = {
            "a": bits_from_ints(rng.integers(0, 4096, 800), 12),
            "b": bits_from_ints(rng.integers(0, 4096, 800), 12),
        }
        timing = simulate_transitions(
            placed.netlist, stim, placed.node_delay, placed.edge_delay
        )
        slow = capture_stream(timing, "sum", 150.0, setup_ns=placed.setup_ns)
        fast = capture_stream(timing, "sum", 2000.0, setup_ns=placed.setup_ns)
        assert slow.error_rate() == 0.0
        assert fast.error_rate() > 0.0
