"""Telemetry must never change a number — on, off, or half-on."""

from __future__ import annotations

import numpy as np

from repro.characterization import characterize_multiplier
from repro.obs import runtime


def _grids_equal(a, b) -> bool:
    return (
        np.array_equal(a.variance, b.variance)
        and np.array_equal(a.mean, b.mean)
        and np.array_equal(a.error_rate, b.error_rate)
        and np.array_equal(a.freqs_mhz, b.freqs_mhz)
        and np.array_equal(a.multiplicands, b.multiplicands)
        and a.locations == b.locations
    )


class TestBitIdentity:
    def test_sweep_identical_with_telemetry_on_off_and_half_on(
        self, device, small_char_config
    ):
        cfg = small_char_config(n_mult=8, chunk=4)
        baseline = characterize_multiplier(device, 8, 8, cfg, seed=5)

        with runtime.observability(trace=True, metrics=True) as observer:
            traced = characterize_multiplier(device, 8, 8, cfg, seed=5)
        with runtime.observability(trace=True, metrics=False):
            trace_only = characterize_multiplier(device, 8, 8, cfg, seed=5)
        with runtime.observability(trace=False, metrics=True):
            metrics_only = characterize_multiplier(device, 8, 8, cfg, seed=5)

        assert _grids_equal(baseline, traced)
        assert _grids_equal(baseline, trace_only)
        assert _grids_equal(baseline, metrics_only)

        # The enabled run actually recorded the sweep stages.
        names = {r.name for r in observer.tracer.records}
        assert {"characterize.sweep", "sweep.run", "sweep.shard"} <= names
        counters = observer.metrics.snapshot().counters
        assert counters["characterize.sweeps"] == 1
        assert counters["sweep.shards.total"] > 0


class TestDisabledPath:
    def test_span_returns_the_shared_null_span(self):
        a = runtime.span("sweep.run", shards=3)
        b = runtime.span("optimize.run")
        assert a is b is runtime._NULL_SPAN
        with a as entered:
            assert entered.set(anything=1) is entered

    def test_disabled_helpers_touch_no_instruments(self):
        runtime.counter_add("gibbs.draws", 5)
        runtime.gauge_set("gibbs.draws", 1.0)
        runtime.observe("sweep.shard_seconds", 0.1)
        snap = runtime.get_observer().metrics.snapshot()
        assert snap.counters == {}
        assert snap.gauges == {}
        assert snap.histograms == {}

    def test_disabled_span_skips_catalogue_validation(self):
        # The null span is shared and stateless; no name lookup happens,
        # which is what keeps the disabled path near-free.
        assert runtime.span("not.even.catalogued") is runtime._NULL_SPAN

    def test_enable_disable_round_trip(self):
        runtime.enable_observability()
        assert runtime.trace_enabled() and runtime.metrics_enabled()
        runtime.disable_observability()
        assert not runtime.get_observer().enabled
