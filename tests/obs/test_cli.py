"""CLI surfaces: ``repro obs ...`` and ``repro-flow --trace/--metrics``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as experiment_main
from repro.cli_flow import main as flow_main, resolve_telemetry_paths
from repro.obs import (
    METRIC_CATALOG,
    SPAN_CATALOG,
    Tracer,
    load_metrics_snapshot,
    load_trace_jsonl,
    telemetry_reference_markdown,
)


@pytest.fixture()
def trace_file(tmp_path):
    tracer = Tracer()
    with tracer.span("sweep.run", shards=1):
        with tracer.span("sweep.shard", li=0, start=0, attempt=1):
            pass
    return tracer.export_jsonl(tmp_path / "run.jsonl")


class TestObsSubcommand:
    def test_reference_prints_the_full_catalogue(self, capsys):
        assert experiment_main(["obs", "reference"]) == 0
        out = capsys.readouterr().out
        assert telemetry_reference_markdown() in out
        for spec in SPAN_CATALOG + METRIC_CATALOG:
            assert f"`{spec.name}`" in out

    def test_trace_summary_text(self, trace_file, capsys):
        assert experiment_main(["obs", "trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "sweep.run" in out and "sweep.shard" in out

    def test_trace_summary_json(self, trace_file, capsys):
        assert experiment_main(
            ["obs", "trace", str(trace_file), "--format", "json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["name"] for r in rows} == {"sweep.run", "sweep.shard"}
        assert all(r["count"] == 1 for r in rows)

    def test_metrics_pretty_print(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("gibbs.draws").add(6)
        registry.histogram("sweep.shard_seconds").observe(0.5)
        path = registry.snapshot().write(tmp_path / "m.json")
        assert experiment_main(["obs", "metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "counter   gibbs.draws = 6" in out
        assert "histogram sweep.shard_seconds: count=1" in out

    def test_missing_path_is_a_usage_error(self, capsys):
        assert experiment_main(["obs", "trace"]) == 2
        assert "requires a path" in capsys.readouterr().err

    def test_unreadable_artefact_exits_2(self, tmp_path, capsys):
        assert experiment_main(["obs", "trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestTelemetryPathResolution:
    def test_flags_win_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "/env/trace")
        monkeypatch.setenv("REPRO_METRICS", "/env/metrics.json")
        trace, metrics = resolve_telemetry_paths("/flag/trace", "/flag/m.json")
        assert trace == "/flag/trace"
        assert metrics == "/flag/m.json"

    def test_environment_used_when_flags_absent(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "/env/trace")
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        trace, metrics = resolve_telemetry_paths(None, None)
        assert trace == "/env/trace"
        assert metrics == "/env/trace.metrics.json"

    def test_trace_alone_implies_a_metrics_snapshot(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        trace, metrics = resolve_telemetry_paths("out/run.json", None)
        assert trace == "out/run.json"
        assert metrics == "out/run.metrics.json"

    def test_nothing_requested_means_no_telemetry(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert resolve_telemetry_paths(None, None) == (None, None)


class TestFlowTracing:
    @pytest.mark.slow
    def test_characterize_with_trace_emits_all_artefacts(self, tmp_path, capsys):
        ws = tmp_path / "ws"
        assert flow_main(["init", str(ws), "--serial", "7", "--scale", "0.012"]) == 0
        base = tmp_path / "out" / "run"
        rc = flow_main(["--trace", str(base), "characterize", str(ws), "--jobs", "1"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "trace written:" in err and "metrics written:" in err

        records = load_trace_jsonl(base.with_suffix(".jsonl"))
        names = {r["name"] for r in records}
        assert {"characterize.sweep", "sweep.run", "sweep.shard"} <= names

        chrome = json.loads(base.with_suffix(".json").read_text())
        assert chrome["otherData"]["producer"] == "repro.obs"
        assert len(chrome["traceEvents"]) == len(records)

        snapshot = load_metrics_snapshot(tmp_path / "out" / "run.metrics.json")
        assert snapshot["counters"]["characterize.sweeps"] >= 1
        assert snapshot["counters"]["sweep.shards.total"] > 0
        assert "cache.placed.misses" in snapshot["counters"]
