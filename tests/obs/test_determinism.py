"""The deterministic metric subset is invariant across worker counts."""

from __future__ import annotations

import pytest

from repro.characterization import characterize_multiplier
from repro.obs import runtime


def _deterministic_counters(device, cfg, jobs):
    with runtime.observability(trace=False, metrics=True) as observer:
        characterize_multiplier(device, 8, 8, cfg, seed=9, jobs=jobs)
    return observer.metrics.snapshot().deterministic_counters()


class TestJobsInvariance:
    @pytest.mark.slow
    def test_deterministic_counters_identical_across_jobs(
        self, device, small_char_config
    ):
        cfg = small_char_config(n_mult=8, chunk=4)
        serial = _deterministic_counters(device, cfg, jobs=1)
        pooled = _deterministic_counters(device, cfg, jobs=2)

        assert serial == pooled
        # And they describe a real sweep, not an empty registry.
        assert serial["characterize.sweeps"] == 1
        assert serial["sweep.shards.total"] == serial["sweep.shards.completed"] > 0
        assert serial["sweep.shards.retried"] == 0
        assert serial["sweep.shards.quarantined"] == 0

    def test_shard_counters_derive_from_the_outcome(self, device, small_char_config):
        """Counters mirror the SweepOutcome report exactly (parent-derived)."""
        cfg = small_char_config(n_mult=8, chunk=4)
        with runtime.observability(trace=False, metrics=True) as observer:
            result = characterize_multiplier(device, 8, 8, cfg, seed=9)
        counters = observer.metrics.snapshot().counters
        outcome = result.outcome
        assert counters["sweep.shards.total"] == len(outcome.reports)
        assert counters["sweep.attempts.total"] == outcome.total_attempts
        assert "sweep.pool.fallbacks" not in counters  # no pool, no fallback
