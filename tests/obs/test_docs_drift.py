"""The telemetry reference in docs/observability.md is generated; keep it so.

Also pins the cross-references the performance/resilience pages make to
named code surfaces, so a rename breaks a test instead of a document.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs import METRIC_CATALOG, SPAN_CATALOG, telemetry_reference_markdown

DOCS = Path(__file__).resolve().parents[2] / "docs"
DOC = DOCS / "observability.md"

BEGIN = "<!-- telemetry-reference:begin"
END = "<!-- telemetry-reference:end -->"


def _doc_reference() -> str:
    text = DOC.read_text()
    assert BEGIN in text and END in text, "telemetry-reference markers missing"
    start = text.index("\n", text.index(BEGIN)) + 1
    return text[start : text.index(END)].strip()


def test_doc_reference_matches_catalogue():
    assert _doc_reference() == telemetry_reference_markdown().strip(), (
        "docs/observability.md telemetry reference is stale; regenerate "
        "the block between the telemetry-reference markers with "
        "repro.obs.telemetry_reference_markdown()"
    )


def test_every_span_documented_exactly_once():
    table = _doc_reference()
    for spec in SPAN_CATALOG:
        assert len(re.findall(rf"\| `{re.escape(spec.name)}` \|", table)) == 1


def test_every_metric_documented_exactly_once():
    table = _doc_reference()
    for spec in METRIC_CATALOG:
        assert len(re.findall(rf"\| `{re.escape(spec.name)}` \|", table)) == 1


def test_doc_mentions_the_surfaces():
    text = DOC.read_text()
    for needle in (
        "REPRO_TRACE",
        "REPRO_METRICS",
        "repro obs reference",
        "repro obs trace",
        "repro obs metrics",
        "deterministic_counters",
        "chrome://tracing",
        "tests/obs/test_noop_identity.py",
        "benchmarks/bench_observability.py",
    ):
        assert needle in text, f"docs/observability.md lost {needle}"


def test_docs_index_links_every_page():
    index = (DOCS / "index.md").read_text()
    for page in sorted(p.name for p in DOCS.glob("*.md") if p.name != "index.md"):
        assert f"({page})" in index, f"docs/index.md does not link {page}"


def test_performance_doc_names_are_current():
    text = (DOCS / "performance.md").read_text()
    for needle in (
        "characterize_multiplier",
        "capture_stream_batch",
        "PlacedDesignCache",
        "REPRO_JOBS",
        "REPRO_CACHE_DIR",
        "repro cache info",
        "BENCH_characterization.json",
        "capture.samples_per_second",   # obs cross-reference
        "docs/observability.md",
    ):
        assert needle in text, f"docs/performance.md lost {needle}"


def test_resilience_doc_names_are_current():
    text = (DOCS / "resilience.md").read_text()
    for needle in (
        "REPRO_FAULTS",
        "REPRO_SHARD_TIMEOUT",
        "REPRO_MAX_RETRIES",
        "REPRO_ALLOW_DEGRADED",
        "SweepOutcome",
        "fallback_inline",
        "SweepFailedError",
        "sweep.shards.{total,completed,retried,recovered,quarantined}",
        "docs/observability.md",
    ):
        assert needle in text, f"docs/resilience.md lost {needle}"
