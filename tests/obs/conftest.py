"""Observability tests always leave the process-wide observer disabled."""

from __future__ import annotations

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def _pristine_observer():
    previous = runtime.set_observer(None)
    try:
        yield
    finally:
        runtime.set_observer(previous)
