"""Metrics registry: catalogue strictness, instruments, snapshot determinism."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_BOUNDARIES,
    Histogram,
    MetricsRegistry,
    load_metrics_snapshot,
    metric_spec,
)
from repro.obs import runtime
from repro.obs.spec import METRIC_CATALOG


class TestCatalogueStrictness:
    def test_unknown_metric_raises(self):
        with pytest.raises(ObservabilityError, match="not in the telemetry catalogue"):
            MetricsRegistry().counter("made.up")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="catalogued as a counter"):
            registry.gauge("gibbs.draws")

    def test_kind_mismatch_on_existing_instrument(self):
        registry = MetricsRegistry()
        registry.counter("gibbs.draws").add()
        with pytest.raises(ObservabilityError, match="is a counter, not a histogram"):
            registry.histogram("gibbs.draws")


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = MetricsRegistry().counter("gibbs.draws")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            counter.add(-1)

    def test_gauge_last_write_wins(self):
        # No gauge is catalogued today; exercise the instrument directly.
        from repro.obs.metrics import Gauge

        gauge = Gauge(metric_spec("gibbs.draws"))
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_buckets_and_extremes(self):
        hist = Histogram(metric_spec("sweep.shard_seconds"), boundaries=(1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 100.0):
            hist.observe(value)
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.minimum == 0.5 and hist.maximum == 100.0
        assert hist.as_dict()["sum"] == pytest.approx(106.4)

    def test_empty_histogram_serialises_without_infinities(self):
        hist = Histogram(metric_spec("sweep.shard_seconds"))
        payload = hist.as_dict()
        assert payload["count"] == 0
        assert payload["min"] is None and payload["max"] is None
        assert payload["bucket_counts"] == [0] * (len(DEFAULT_BOUNDARIES) + 1)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            Histogram(metric_spec("sweep.shard_seconds"), boundaries=(2.0, 1.0))
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            Histogram(metric_spec("sweep.shard_seconds"), boundaries=(1.0, 1.0))


class TestSnapshot:
    def _populated(self, order):
        registry = MetricsRegistry()
        for name in order:
            registry.counter(name).add(3)
        registry.histogram("sweep.shard_seconds").observe(0.25)
        return registry

    def test_creation_order_does_not_change_serialisation(self):
        a = self._populated(["gibbs.draws", "sweep.shards.total"])
        b = self._populated(["sweep.shards.total", "gibbs.draws"])
        assert a.snapshot().to_json() == b.snapshot().to_json()

    def test_snapshot_is_point_in_time(self):
        registry = self._populated(["gibbs.draws"])
        snap = registry.snapshot()
        registry.counter("gibbs.draws").add(10)
        assert snap.counters["gibbs.draws"] == 3

    def test_deterministic_counters_subset(self):
        registry = self._populated(["gibbs.draws"])
        registry.counter("cache.placed.hits").add(7)
        det = registry.snapshot().deterministic_counters()
        assert det == {"gibbs.draws": 3}

    def test_deterministic_flags_match_catalogue_intent(self):
        by_name = {m.name: m for m in METRIC_CATALOG}
        # Workload-pure counts are deterministic; timing and per-process
        # cache/pool counts must not be.
        assert by_name["sweep.shards.total"].deterministic
        assert by_name["gibbs.draws"].deterministic
        assert not by_name["cache.placed.hits"].deterministic
        assert not by_name["sweep.pool.fallbacks"].deterministic
        for metric in METRIC_CATALOG:
            if metric.kind == "histogram":
                assert not metric.deterministic, metric.name

    def test_write_and_load_round_trip(self, tmp_path):
        registry = self._populated(["gibbs.draws"])
        path = registry.snapshot().write(tmp_path / "m.json")
        payload = load_metrics_snapshot(path)
        assert payload["schema_version"] == 1
        assert payload["counters"]["gibbs.draws"] == 3
        assert payload == json.loads(registry.snapshot().to_json())

    def test_load_rejects_non_snapshots(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read metrics"):
            load_metrics_snapshot(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{]")
        with pytest.raises(ObservabilityError, match="not a metrics snapshot"):
            load_metrics_snapshot(bad)
        bad.write_text('{"no": "counters"}')
        with pytest.raises(ObservabilityError, match="not a metrics snapshot"):
            load_metrics_snapshot(bad)

    def test_reset_clears_instruments_and_profiles(self):
        registry = self._populated(["gibbs.draws"])
        registry.record_profile({"stage": "x", "wall_s": 0.0})
        registry.reset()
        snap = registry.snapshot()
        assert snap.counters == {} and snap.histograms == {}
        assert snap.profiles == ()


class TestProfiles:
    def test_profile_stage_records_when_enabled(self):
        with runtime.observability(trace=False, metrics=True) as observer:
            with runtime.profile_stage("characterize"):
                pass
        (profile,) = observer.metrics.snapshot().profiles
        assert profile["stage"] == "characterize"
        assert set(profile) == {"stage", "wall_s", "cpu_s", "peak_rss_bytes"}
        assert profile["wall_s"] >= 0.0

    def test_profile_stage_noop_when_disabled(self):
        with runtime.profile_stage("characterize"):
            pass
        assert runtime.get_observer().metrics.snapshot().profiles == ()
