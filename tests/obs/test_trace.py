"""Tracer semantics: hierarchy, catalogue strictness, export round-trip."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Tracer,
    chrome_trace_from_records,
    load_trace_jsonl,
    summarize_spans,
)
from repro.obs import runtime


def _tiny_trace() -> Tracer:
    tracer = Tracer()
    with tracer.span("sweep.run", shards=2) as run:
        with tracer.span("sweep.shard", li=0, start=0, attempt=1):
            pass
        with tracer.span("sweep.shard", li=1, start=0, attempt=1):
            pass
        run.set(status="complete")
    return tracer


class TestSpans:
    def test_parenting_follows_nesting(self):
        records = _tiny_trace().records
        # Completion order: the two shards finish before the run.
        assert [r.name for r in records] == [
            "sweep.shard", "sweep.shard", "sweep.run",
        ]
        run = records[2]
        assert run.parent_id is None
        assert all(r.parent_id == run.span_id for r in records[:2])
        assert run.attrs == {"shards": 2, "status": "complete"}

    def test_sibling_spans_do_not_nest(self):
        tracer = Tracer()
        with tracer.span("sweep.run"):
            pass
        with tracer.span("optimize.run"):
            pass
        first, second = tracer.records
        assert second.parent_id is None
        assert first.span_id != second.span_id

    def test_uncatalogued_span_raises(self):
        with pytest.raises(ObservabilityError, match="not in the telemetry catalogue"):
            Tracer().span("bogus.name")

    def test_reset_clears_records_and_ids(self):
        tracer = _tiny_trace()
        tracer.reset()
        assert tracer.records == ()
        with tracer.span("sweep.run"):
            pass
        assert tracer.records[0].span_id == 1

    def test_timings_are_monotone(self):
        for record in _tiny_trace().records:
            assert record.start_s >= 0.0
            assert record.duration_s >= 0.0


class TestExport:
    def test_jsonl_chrome_round_trip_is_byte_identical(self, tmp_path):
        tracer = _tiny_trace()
        jsonl = tracer.export_jsonl(tmp_path / "run.jsonl")
        chrome = tracer.export_chrome(tmp_path / "run.json")

        rebuilt = chrome_trace_from_records(load_trace_jsonl(jsonl))
        assert (
            json.dumps(rebuilt, sort_keys=True, indent=1) + "\n"
            == chrome.read_text()
        )

    def test_chrome_document_shape(self):
        doc = chrome_trace_from_records(
            r.as_dict() for r in _tiny_trace().records
        )
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.obs"
        events = doc["traceEvents"]
        assert len(events) == 3
        assert all(e["ph"] == "X" for e in events)
        # Category is the name prefix; timestamps are sorted microseconds.
        assert all(e["cat"] == e["name"].split(".", 1)[0] for e in events)
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
        # Hierarchy survives via args.
        run = next(e for e in events if e["name"] == "sweep.run")
        shard = next(e for e in events if e["name"] == "sweep.shard")
        assert shard["args"]["parent_id"] == run["args"]["span_id"]

    def test_jsonl_records_carry_schema_version(self, tmp_path):
        path = _tiny_trace().export_jsonl(tmp_path / "run.jsonl")
        for record in load_trace_jsonl(path):
            assert record["schema_version"] == 1

    def test_empty_tracer_exports_empty_files(self, tmp_path):
        tracer = Tracer()
        assert (tracer.export_jsonl(tmp_path / "e.jsonl")).read_text() == ""
        doc = json.loads((tracer.export_chrome(tmp_path / "e.json")).read_text())
        assert doc["traceEvents"] == []

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read trace"):
            load_trace_jsonl(tmp_path / "absent.jsonl")

    def test_load_invalid_json_raises_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "sweep.run"}\nnot json\n')
        with pytest.raises(ObservabilityError, match="bad.jsonl:2"):
            load_trace_jsonl(path)

    def test_load_non_record_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ObservabilityError, match="not a span record"):
            load_trace_jsonl(path)


class TestSummarize:
    def test_aggregates_by_name_sorted_by_total(self):
        records = [
            {"name": "a.x", "duration_s": 1.0},
            {"name": "a.x", "duration_s": 3.0},
            {"name": "b.y", "duration_s": 0.5},
        ]
        rows = summarize_spans(records)
        assert [r["name"] for r in rows] == ["a.x", "b.y"]
        assert rows[0] == {
            "name": "a.x", "count": 2, "total_s": 4.0, "mean_s": 2.0, "max_s": 3.0,
        }


class TestPathConventions:
    def test_trace_suffix_stripped(self, tmp_path):
        runtime.enable_observability(trace=True, metrics=False)
        with runtime.span("sweep.run"):
            pass
        jsonl, chrome = runtime.export_trace_files(tmp_path / "run.json")
        assert jsonl == tmp_path / "run.jsonl"
        assert chrome == tmp_path / "run.json"
        assert len(load_trace_jsonl(jsonl)) == 1

    def test_default_metrics_path_preserves_dotted_names(self, tmp_path):
        base = tmp_path / "night.run"
        assert runtime.default_metrics_path(base).name == "night.run.metrics.json"
        assert (
            runtime.default_metrics_path(tmp_path / "run.jsonl").name
            == "run.metrics.json"
        )
