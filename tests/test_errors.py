"""Tests for repro.errors — the exception hierarchy contract."""

import pytest

from repro import errors


ALL_SUBCLASSES = [
    errors.ConfigError,
    errors.NetlistError,
    errors.PlacementError,
    errors.TimingError,
    errors.CharacterizationError,
    errors.ModelError,
    errors.OptimizationError,
    errors.DesignError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_SUBCLASSES)
    def test_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_single_catch_covers_library(self):
        """Callers can catch everything from the package in one clause."""
        for exc in ALL_SUBCLASSES:
            try:
                raise exc("boom")
            except errors.ReproError as e:
                assert "boom" in str(e)

    def test_subsystems_distinguishable(self):
        with pytest.raises(errors.NetlistError):
            try:
                raise errors.NetlistError("x")
            except errors.TimingError:  # pragma: no cover - must not match
                pytest.fail("TimingError must not catch NetlistError")
