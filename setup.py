"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on minimal offline environments whose setuptools
predates PEP 660 editable-wheel support (no ``wheel`` package available).
"""

from setuptools import setup

setup()
