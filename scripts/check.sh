#!/usr/bin/env bash
# Repository quality gate: style lint, type check, tier-1 test suite,
# chaos drills, smoke benches, the determinism audit and the cache
# stress test.
#
# Tools that are not installed are skipped with a warning instead of
# failing, so the script works in minimal offline environments; the
# pytest tier-1 run is mandatory.
#
# Usage: scripts/check.sh  (from the repository root)

set -u
cd "$(dirname "$0")/.."

failures=0

run_gate() {
    local label="$1"
    shift
    echo "==== ${label}: $*"
    if "$@"; then
        echo "==== ${label}: OK"
    else
        echo "==== ${label}: FAILED"
        failures=$((failures + 1))
    fi
}

if command -v ruff >/dev/null 2>&1; then
    run_gate "ruff" ruff check src tests scripts benchmarks examples
    # The analysis package is held to a stricter bar: pylint-parity and
    # ruff-specific rules are hard failures there, warn-only elsewhere.
    run_gate "ruff (analysis, strict)" ruff check --select PL,RUF src/repro/analysis
    run_gate "ruff (obs, strict)" ruff check --select PL,RUF src/repro/obs
    run_gate "ruff (kernels, strict)" ruff check --select PL,RUF src/repro/kernels
    run_gate "ruff (serve, strict)" ruff check --select PL,RUF src/repro/serve
    # Promoted from warn-only: the whole library now holds the
    # pylint-parity + ruff-specific bar, not just the newer subsystems.
    run_gate "ruff (library, strict)" ruff check --select PL,RUF src/repro
else
    echo "warning: ruff not installed; skipping style lint" >&2
fi

if command -v mypy >/dev/null 2>&1; then
    run_gate "mypy" mypy src/repro
    # New analysis/observability modules carry full annotations; keep them strict.
    run_gate "mypy (analysis, strict)" mypy --strict src/repro/analysis
    run_gate "mypy (obs, strict)" mypy --strict src/repro/obs
    run_gate "mypy (kernels, strict)" mypy --strict src/repro/kernels
    run_gate "mypy (serve, strict)" mypy --strict src/repro/serve
else
    echo "warning: mypy not installed; skipping type check" >&2
fi

if python -c "import pytest_cov" >/dev/null 2>&1; then
    # Coverage-gated tier-1 run.  COV_FAIL_UNDER pins the seed baseline;
    # lowering it needs a deliberate edit here, not a quiet regression.
    run_gate "pytest (tier-1 + coverage)" env PYTHONPATH=src python -m pytest -x -q \
        --cov=repro --cov-report=term-missing:skip-covered \
        --cov-fail-under="${COV_FAIL_UNDER:-80}"
else
    echo "warning: pytest-cov not installed; running tier-1 without coverage gate" >&2
    run_gate "pytest (tier-1)" env PYTHONPATH=src python -m pytest -x -q
fi

# Slow process-pool tests are deselected from default runs by marker
# hygiene elsewhere; this job makes sure they still run somewhere.
run_gate "pytest (slow pool)" env PYTHONPATH=src python -m pytest -x -q -m slow

# Chaos gate: the tier-1 suite must survive a deterministic fault plan.
# The plan injects transient failures (a one-shot crash and a one-shot
# corrupted result) into every characterisation sweep; the retry layer
# must absorb them, so the whole suite passes bit-identically.
chaos_plan='{"seed": 7, "specs": [
    {"kind": "crash",   "li": 0, "start": 0, "times": 1},
    {"kind": "corrupt", "li": 1, "times": 1}
]}'
run_gate "pytest (chaos: transient faults armed)" env PYTHONPATH=src \
    REPRO_FAULTS="${chaos_plan}" \
    python -m pytest -x -q tests/parallel tests/characterization tests/faults

# Degraded-mode drill: a persistent fault must quarantine exactly its
# target shard and still yield a usable (NaN-celled) sweep.
run_gate "chaos (degraded-mode drill)" env PYTHONPATH=src python - <<'PY'
import numpy as np
from repro.characterization import CharacterizationConfig, characterize_multiplier
from repro.config import ResilienceSettings
from repro.fabric import make_device
from repro.faults import FaultPlan

plan = FaultPlan.from_json(
    '{"seed": 7, "specs": [{"kind": "crash", "li": 0, "start": 0, "times": -1}]}'
)
cfg = CharacterizationConfig(
    freqs_mhz=(280.0, 320.0), n_samples=40,
    multiplicands=tuple(range(8)), n_locations=2, segment_chunk=4,
)
policy = ResilienceSettings(
    max_retries=1, backoff_base_s=0.0, backoff_jitter=0.0, allow_degraded=True
)
result = characterize_multiplier(
    make_device(1234), 9, 3, cfg, seed=3, resilience=policy, faults=plan
)
assert result.outcome.status == "degraded", result.outcome.status
assert result.outcome.quarantined == ((0, 0),), result.outcome.quarantined
assert np.all(np.isnan(result.variance[0, 0:4, :]))
assert np.all(np.isfinite(result.variance[1]))
print("degraded-mode drill OK:", result.outcome.as_dict()["status"],
      "quarantined", result.outcome.quarantined)
PY

# Characterisation-engine smoke bench: asserts the engine is bit-identical
# to the legacy path across worker counts and the JSON schema is intact.
bench_json="$(mktemp -t bench_characterization.XXXXXX.json)"
run_gate "bench (smoke)" python benchmarks/bench_parallel_characterization.py \
    --smoke --jobs 1,2 --output "${bench_json}"
run_gate "bench schema" python - "${bench_json}" <<'PY'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["schema_version"] == 1
assert payload["smoke"] is True
assert payload["sweep"]["bit_identical_across_jobs"] is True
assert payload["sweep"]["matches_legacy"] is True
assert payload["cache"]["speedup"] > 1.0
print("bench schema OK")
PY
rm -f "${bench_json}"

# Dataflow-analysis smoke bench: the interpreter's exactness probes and
# the CCM equivalence certificates are asserted inside the benchmark.
dataflow_json="$(mktemp -t bench_dataflow.XXXXXX.json)"
run_gate "bench (dataflow smoke)" python benchmarks/bench_dataflow.py \
    --smoke --output "${dataflow_json}"
rm -f "${dataflow_json}"

# Observability smoke bench: asserts telemetry is bit-transparent (grids
# identical on/off), the trace/metrics cover the pipeline stages, and the
# disabled path stays within its per-call-site cost bound.
obs_json="$(mktemp -t bench_observability.XXXXXX.json)"
run_gate "bench (observability smoke)" python benchmarks/bench_observability.py \
    --smoke --output "${obs_json}"
run_gate "bench (observability schema)" python - "${obs_json}" <<'PY'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["schema_version"] == 1
assert payload["smoke"] is True
assert payload["sweep"]["bit_identical"] is True
assert "sweep.shard" in payload["sweep"]["span_names"]
assert payload["noop"]["ns_per_call"] > 0
print("observability bench schema OK")
PY
rm -f "${obs_json}"

# Kernel-compiler smoke bench: asserts the packed kernel is bit-identical
# to the interpreted reference on every consumer (functional, timing,
# full sweep, tiled family) and the speedup floor holds.
compile_json="$(mktemp -t bench_compile.XXXXXX.json)"
run_gate "bench (kernel compiler smoke)" python benchmarks/bench_compile.py \
    --smoke --output "${compile_json}"
run_gate "bench (kernel compiler schema)" python - "${compile_json}" <<'PY'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["schema_version"] == 1
assert payload["smoke"] is True
assert payload["functional"]["bit_identical_vs_interp"] is True
assert payload["timing"]["bit_identical_vs_interp"] is True
assert all(e["bit_identical_vs_interp"] for e in payload["sweep"]["jobs"].values())
assert payload["tile"]["bit_identical_vs_interp"] is True
assert payload["functional"]["speedup"] > 1.0
assert payload["plan"]["cache_hit_seconds"] < payload["plan"]["compile_seconds"]
print("kernel compiler bench schema OK")
PY
rm -f "${compile_json}"

# Telemetry docs drift: the generated reference in docs/observability.md
# must match the catalogue (same contract as the lint-rule table).
run_gate "docs drift (telemetry reference)" env PYTHONPATH=src \
    python -m pytest -x -q tests/obs/test_docs_drift.py

# Determinism audit: the library's own source must be clean under the
# DTxxx sanitizer — zero unsuppressed findings, every pragma justified.
run_gate "audit (determinism sanitizer)" env PYTHONPATH=src \
    python -m repro.cli audit --family dt src/repro

# Distribution-readiness audit: the DXxxx portability family must also
# be clean — pure boundary payloads, complete cache keys, no host
# identity reaching artefacts.
run_gate "audit (distribution readiness)" env PYTHONPATH=src \
    python -m repro.cli audit --family dx src/repro

# Wire-contract gate: every frozen wire-schema fingerprint must match
# the shape derived from source; schema changes land with an explicit
# FROZEN_CONTRACTS update or they fail here.
run_gate "audit (wire contracts)" env PYTHONPATH=src \
    python -m repro.cli audit --contracts src/repro

# Serve gate: the characterisation-as-a-service suite (byte-equality vs
# the batch CLI, admission properties, chaos parity, cancellation).
run_gate "pytest (serve suite)" env PYTHONPATH=src \
    python -m pytest -x -q tests/serve

# Serve smoke: boot a real server on a socket, submit a characterise
# job through the thin client, and require the archive byte-equal to a
# batch `repro-flow characterize` of the same workspace identity.
serve_dir="$(mktemp -d -t serve_smoke.XXXXXX)"
run_gate "serve (boot-submit-byte-check)" env PYTHONPATH=src \
    SERVE_SMOKE_DIR="${serve_dir}" python - <<'PY'
import os, threading
from pathlib import Path

from repro.cli_flow import main as flow_main
from repro.serve import JobServer, ServeClient

root = Path(os.environ["SERVE_SMOKE_DIR"])
cli_ws, srv_ws = root / "cli_ws", root / "srv_ws"
assert flow_main(["init", str(cli_ws), "--serial", "7", "--scale", "0.012"]) == 0
assert flow_main(["characterize", str(cli_ws)]) == 0

server = JobServer(root / "serve.sock", cache_dir=root / "cache")
ready = threading.Event()
thread = threading.Thread(target=server.run_blocking, args=(ready,), daemon=True)
thread.start()
assert ready.wait(10.0), "server did not boot"
client = ServeClient(root / "serve.sock")
job = client.submit(
    "smoke", "characterize", srv_ws,
    params={"init": {"serial": 7, "scale": 0.012}},
)
done = client.wait(job["job_id"], timeout_s=600.0)
assert done["state"] == "done", done
mismatches = []
for path in sorted((cli_ws / "characterization").glob("wl*.npz")):
    twin = srv_ws / "characterization" / path.name
    if twin.read_bytes() != path.read_bytes():
        mismatches.append(path.name)
assert not mismatches, f"served archives differ from batch: {mismatches}"
client.shutdown()
thread.join(60.0)
print("serve smoke OK: served archives byte-equal the batch CLI's")
PY
rm -rf "${serve_dir}"

# Cache-race gate: the runtime sanitizer's unit layer plus the
# multi-process stress test (N processes racing one on-disk cache with
# REPRO_SANITIZE=1: zero lost updates, bit-identical placements).
run_gate "pytest (cache sanitizer + stress)" env PYTHONPATH=src \
    python -m pytest -x -q tests/parallel/test_sanitize.py

# Audit smoke bench: re-asserts the clean/justified/deterministic
# contracts and records audit wall time.
audit_json="$(mktemp -t bench_audit.XXXXXX.json)"
run_gate "bench (audit smoke)" python benchmarks/bench_audit.py \
    --smoke --output "${audit_json}"
rm -f "${audit_json}"

# Sanitizer docs drift: the DT/DX rule tables, effect catalogue and
# wire-contract registry in docs/static_analysis.md must match the
# registries.
run_gate "docs drift (DT-rule reference)" env PYTHONPATH=src \
    python -m pytest -x -q tests/analysis/sanitizer/test_docs_drift.py
run_gate "docs drift (DX-rule + contracts reference)" env PYTHONPATH=src \
    python -m pytest -x -q tests/analysis/portability/test_docs_drift.py

if [ "${failures}" -ne 0 ]; then
    echo "${failures} gate(s) failed"
    exit 1
fi
echo "all gates passed"

# Distributed-fabric smoke bench: every executor topology (serial, pool,
# file-queue) must produce bit-identical grids, and the worker-kill
# chaos drill must recover via a lease requeue.
dist_json="$(mktemp -t bench_distributed.XXXXXX.json)"
run_gate "bench (distributed fabric smoke)" python benchmarks/bench_distributed.py \
    --smoke --output "${dist_json}"
run_gate "bench (distributed fabric schema)" python - "${dist_json}" <<'PY'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["schema_version"] == 1
assert payload["smoke"] is True
assert set(payload["executors"]) == {"serial", "pool", "file-queue"}
assert all(e["bit_identical_vs_serial"] for e in payload["executors"].values())
assert payload["chaos"]["bit_identical_vs_serial"] is True
assert payload["chaos"]["leases_requeued"] >= 1
assert payload["chaos"]["status"] == "complete"
print("distributed fabric bench schema OK")
PY
rm -f "${dist_json}"

# File-queue byte-diff gate: a 2-worker file-queue characterisation of a
# real workspace must archive byte-identical wl*.npz to the default
# in-process pool run.
fq_dir="$(mktemp -d -t fq_bytediff.XXXXXX)"
run_gate "file-queue (2-worker byte-diff vs pool)" env PYTHONPATH=src \
    FQ_BYTEDIFF_DIR="${fq_dir}" python - <<'PY'
import os
from pathlib import Path

from repro.cli_flow import main as flow_main

root = Path(os.environ["FQ_BYTEDIFF_DIR"])
pool_ws, fq_ws = root / "pool_ws", root / "fq_ws"
for ws in (pool_ws, fq_ws):
    assert flow_main(["init", str(ws), "--serial", "7", "--scale", "0.012"]) == 0
assert flow_main(["characterize", str(pool_ws), "--jobs", "2"]) == 0
assert flow_main(
    ["characterize", str(fq_ws), "--executor", "file-queue", "--jobs", "2"]
) == 0
pool_npz = sorted((pool_ws / "characterization").glob("wl*.npz"))
assert pool_npz, "pool run archived nothing"
mismatches = [
    p.name for p in pool_npz
    if (fq_ws / "characterization" / p.name).read_bytes() != p.read_bytes()
]
assert not mismatches, f"file-queue archives differ from pool: {mismatches}"
print(f"file-queue byte-diff OK: {len(pool_npz)} archives identical to pool")
PY
rm -rf "${fq_dir}"

# Distributed docs drift: the generated executor/spool/descriptor tables
# in docs/distributed.md must match their renderers, and the operator
# guide must keep naming the surfaces it documents.
run_gate "docs drift (distributed fabric)" env PYTHONPATH=src \
    python -m pytest -x -q tests/parallel/test_distributed_docs.py
