#!/usr/bin/env bash
# Repository quality gate: style lint, type check, tier-1 test suite.
#
# Tools that are not installed are skipped with a warning instead of
# failing, so the script works in minimal offline environments; the
# pytest tier-1 run is mandatory.
#
# Usage: scripts/check.sh  (from the repository root)

set -u
cd "$(dirname "$0")/.."

failures=0

run_gate() {
    local label="$1"
    shift
    echo "==== ${label}: $*"
    if "$@"; then
        echo "==== ${label}: OK"
    else
        echo "==== ${label}: FAILED"
        failures=$((failures + 1))
    fi
}

if command -v ruff >/dev/null 2>&1; then
    run_gate "ruff" ruff check src tests scripts benchmarks examples
else
    echo "warning: ruff not installed; skipping style lint" >&2
fi

if command -v mypy >/dev/null 2>&1; then
    run_gate "mypy" mypy src/repro
else
    echo "warning: mypy not installed; skipping type check" >&2
fi

run_gate "pytest (tier-1)" env PYTHONPATH=src python -m pytest -x -q

if [ "${failures}" -ne 0 ]; then
    echo "${failures} gate(s) failed"
    exit 1
fi
echo "all gates passed"
