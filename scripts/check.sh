#!/usr/bin/env bash
# Repository quality gate: style lint, type check, tier-1 test suite.
#
# Tools that are not installed are skipped with a warning instead of
# failing, so the script works in minimal offline environments; the
# pytest tier-1 run is mandatory.
#
# Usage: scripts/check.sh  (from the repository root)

set -u
cd "$(dirname "$0")/.."

failures=0

run_gate() {
    local label="$1"
    shift
    echo "==== ${label}: $*"
    if "$@"; then
        echo "==== ${label}: OK"
    else
        echo "==== ${label}: FAILED"
        failures=$((failures + 1))
    fi
}

if command -v ruff >/dev/null 2>&1; then
    run_gate "ruff" ruff check src tests scripts benchmarks examples
else
    echo "warning: ruff not installed; skipping style lint" >&2
fi

if command -v mypy >/dev/null 2>&1; then
    run_gate "mypy" mypy src/repro
else
    echo "warning: mypy not installed; skipping type check" >&2
fi

run_gate "pytest (tier-1)" env PYTHONPATH=src python -m pytest -x -q

# Characterisation-engine smoke bench: asserts the engine is bit-identical
# to the legacy path across worker counts and the JSON schema is intact.
bench_json="$(mktemp -t bench_characterization.XXXXXX.json)"
run_gate "bench (smoke)" python benchmarks/bench_parallel_characterization.py \
    --smoke --jobs 1,2 --output "${bench_json}"
run_gate "bench schema" python - "${bench_json}" <<'PY'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["schema_version"] == 1
assert payload["smoke"] is True
assert payload["sweep"]["bit_identical_across_jobs"] is True
assert payload["sweep"]["matches_legacy"] is True
assert payload["cache"]["speedup"] > 1.0
print("bench schema OK")
PY
rm -f "${bench_json}"

if [ "${failures}" -ne 0 ]; then
    echo "${failures} gate(s) failed"
    exit 1
fi
echo "all gates passed"
